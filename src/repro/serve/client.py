"""Blocking client and concurrent load generator for the planning service.

:class:`ServeClient` is the minimal synchronous counterpart of the server:
one TCP connection, one request line out, one response line in, errors
surfaced as :class:`~repro.errors.ServeError` with the protocol's error
code attached.

:class:`LoadGenerator` drives many clients from worker threads to measure
the server under concurrency: per-request wall-clock latencies, nearest-rank
percentiles (p50/p95/p99), throughput, and the outcome mix (ok / rejected /
deadline / failed). The server-side coalescing and planner-execution
counters are read through a ``stats`` request before and after the run, so
a load report also says how much work the single-flight layer *avoided*.

``python -m repro.serve.client`` exposes the generator on the command line,
including a self-contained ``--smoke`` mode (spawns an in-process thread
server, drives a mixed plan/health workload, asserts zero failures and at
least one coalesced request) used by CI.
"""

from __future__ import annotations

import argparse
import json
import math
import multiprocessing
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.errors import ServeError
from repro.serve.protocol import DEADLINE_EXCEEDED, OVERLOADED, decode_response, encode
from repro.serve.protocol import raise_for_error as _raise_for_error

__all__ = ["ServeClient", "LoadGenerator", "LoadReport", "percentile", "run_smoke"]


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of ``samples``.

    The standard load-testing convention: p99 of 100 samples is the 99th
    smallest, no interpolation. Empty input returns ``nan``.
    """
    if not samples:
        return float("nan")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile: p must be in [0, 100], got {p}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.PlanningServer`.

    Usable as a context manager. Not thread-safe — give each thread its own
    client (connections are cheap; the server multiplexes).

    ``retries`` > 0 makes :meth:`request` retry transient failures — a
    structured ``overloaded`` rejection (backpressure: the queue was full
    *right then*) or a reset/closed connection (a server or fleet shard
    restarting under us) — with jittered exponential backoff
    (``retry_backoff`` base, ``retry_cap`` ceiling, both seconds),
    reconnecting first when the transport died. Every other error code
    (``bad_request``, ``deadline_exceeded``, ...) still raises
    immediately: those are answers, not weather. Performed retries
    accumulate on :attr:`n_retries` (read by the load generator's report).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0,
                 retries: int = 0, retry_backoff: float = 0.05,
                 retry_cap: float = 2.0, seed: int | None = None) -> None:
        if retries < 0:
            raise ValueError(f"ServeClient: retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.n_retries = 0
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._retry_cap = retry_cap
        self._rng = Random(seed)
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        try:
            self.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._connect()

    # ------------------------------------------------------------------ core
    def request(self, rtype: str, *, deadline: float | None = None,
                **params: Any) -> dict[str, Any]:
        """Send one request, block for its response, return the result.

        Raises
        ------
        ServeError
            With the server's error ``code`` on a failure response, or
            ``code="internal"`` on a broken/closed connection — after the
            retry budget, if one was configured, is exhausted.
        """
        last_exc: ServeError | None = None
        for attempt in range(self._retries + 1):
            if attempt:
                self.n_retries += 1
                base = min(self._retry_backoff * (2 ** (attempt - 1)),
                           self._retry_cap)
                time.sleep(base * (0.5 + self._rng.random()))
            # A fresh id per attempt: retrying a rejected id on the same
            # connection would trip the server's duplicate-id guard.
            self._next_id += 1
            message: dict[str, Any] = {"type": rtype, "id": self._next_id,
                                       **params}
            if deadline is not None:
                message["deadline"] = deadline
            try:
                self._file.write(encode(message))
                self._file.flush()
                line = self._file.readline()
            except (OSError, ValueError) as exc:
                last_exc = ServeError(f"connection failed: {exc}", code="internal")
                if attempt < self._retries:
                    self._reconnect()
                    continue
                raise last_exc from exc
            if not line:
                last_exc = ServeError("connection closed by server",
                                      code="internal")
                if attempt < self._retries:
                    self._reconnect()
                    continue
                raise last_exc
            try:
                return _raise_for_error(decode_response(line))
            except ServeError as exc:
                if exc.code == OVERLOADED and attempt < self._retries:
                    last_exc = exc
                    continue
                raise
        raise last_exc if last_exc is not None else ServeError(
            "request failed", code="internal")  # pragma: no cover

    # ------------------------------------------------------------- shorthands
    def plan(self, network: dict[str, Any], horizon: float, *,
             refine: bool = False, base: int = 2,
             deadline: float | None = None, **extra: Any) -> dict[str, Any]:
        """``plan`` request; returns the result (``result["plan"]`` is the
        :func:`~repro.io.plan_json.plan_to_dict` document)."""
        return self.request("plan", network=network, horizon=horizon,
                            refine=refine, base=base, deadline=deadline, **extra)

    def simulate(self, network: dict[str, Any], plan: dict[str, Any], *,
                 deadline: float | None = None, **extra: Any) -> dict[str, Any]:
        """``simulate`` request; returns the metrics dict."""
        return self.request("simulate", network=network, plan=plan,
                            deadline=deadline, **extra)

    def stats(self) -> dict[str, Any]:
        """Live server statistics (obs counters/timers, queue, caches)."""
        return self.request("stats")

    def health(self) -> dict[str, Any]:
        """Liveness/readiness snapshot."""
        return self.request("health")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class LoadReport:
    """What one :meth:`LoadGenerator.run` measured."""

    concurrency: int
    n_requests: int = 0
    n_ok: int = 0
    n_rejected: int = 0      # structured `overloaded` responses
    n_deadline: int = 0      # structured `deadline_exceeded` responses
    n_failed: int = 0        # anything else that was not ok
    n_retries: int = 0       # client-side retry attempts actually performed
    duration: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    coalesced: int = 0       # server-side serve.coalesced delta
    plan_cache_hits: int = 0  # server-side serve.plan_cache.hit delta
    planner_runs: int = 0    # server-side plan.calls delta (actual executions)

    @property
    def throughput(self) -> float:
        """Completed requests per second (all outcomes)."""
        return self.n_requests / self.duration if self.duration > 0 else 0.0

    def latency_summary(self) -> dict[str, float]:
        lats = self.latencies_ms
        return {
            "p50": percentile(lats, 50),
            "p95": percentile(lats, 95),
            "p99": percentile(lats, 99),
            "mean": sum(lats) / len(lats) if lats else float("nan"),
            "max": max(lats) if lats else float("nan"),
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (latencies collapsed to percentiles)."""
        return {
            "concurrency": self.concurrency,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_deadline": self.n_deadline,
            "n_failed": self.n_failed,
            "n_retries": self.n_retries,
            "duration_s": self.duration,
            "throughput_rps": self.throughput,
            "latency_ms": self.latency_summary(),
            "coalesced": self.coalesced,
            "plan_cache_hits": self.plan_cache_hits,
            "planner_runs": self.planner_runs,
        }


class LoadGenerator:
    """Drive a request mix at a fixed concurrency and measure it.

    ``requests`` is a list of ``(type, params)`` pairs; worker threads pull
    from it in order (shared cursor), each over its own connection, so the
    wire behaviour matches ``concurrency`` independent clients.

    ``retries`` is handed to every :class:`ServeClient` (transient-failure
    retry budget; attempts performed land in ``LoadReport.n_retries``).
    ``processes`` > 1 forks that many generator *processes*, each driving
    ``concurrency`` threads over its own slice of the mix — the shape that
    saturates a multi-shard fleet from a single driver machine, where one
    Python process would bottleneck on its own GIL before the fleet does.
    """

    def __init__(self, host: str, port: int, *, concurrency: int = 4,
                 timeout: float = 120.0, retries: int = 0,
                 processes: int = 1) -> None:
        if concurrency < 1:
            raise ValueError(f"LoadGenerator: concurrency must be >= 1, got {concurrency}")
        if processes < 1:
            raise ValueError(f"LoadGenerator: processes must be >= 1, got {processes}")
        self.host = host
        self.port = port
        self.concurrency = concurrency
        self.timeout = timeout
        self.retries = retries
        self.processes = processes

    def run(self, requests: list[tuple[str, dict[str, Any]]],
            *, start_barrier: bool = True) -> LoadReport:
        """Execute the mix; returns the filled :class:`LoadReport`.

        With ``start_barrier`` (default) all threads connect first and
        release together, so the initial burst is genuinely concurrent —
        what the coalescing assertions in CI rely on.
        """
        before = self._server_counters()
        t0 = time.perf_counter()
        if self.processes > 1:
            report = self._run_multiprocess(requests, start_barrier)
        else:
            report = self._run_threads(requests, start_barrier)
        report.duration = time.perf_counter() - t0
        after = self._server_counters()
        report.coalesced = int(after.get("serve.coalesced", 0)
                               - before.get("serve.coalesced", 0))
        report.plan_cache_hits = int(after.get("serve.plan_cache.hit", 0)
                                     - before.get("serve.plan_cache.hit", 0))
        report.planner_runs = int(after.get("plan.calls", 0)
                                  - before.get("plan.calls", 0))
        return report

    def _run_threads(self, requests: list[tuple[str, dict[str, Any]]],
                     start_barrier: bool) -> LoadReport:
        report = LoadReport(concurrency=self.concurrency)
        cursor = {"i": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(self.concurrency) if start_barrier else None

        def worker() -> None:
            with ServeClient(self.host, self.port, timeout=self.timeout,
                             retries=self.retries) as client:
                if barrier is not None:
                    barrier.wait(timeout=self.timeout)
                while True:
                    with lock:
                        i = cursor["i"]
                        if i >= len(requests):
                            break
                        cursor["i"] = i + 1
                    rtype, params = requests[i]
                    t0 = time.perf_counter()
                    try:
                        client.request(rtype, **params)
                        outcome = "ok"
                    except ServeError as exc:
                        outcome = exc.code
                    latency = (time.perf_counter() - t0) * 1e3
                    with lock:
                        report.n_requests += 1
                        report.latencies_ms.append(latency)
                        if outcome == "ok":
                            report.n_ok += 1
                        elif outcome == OVERLOADED:
                            report.n_rejected += 1
                        elif outcome == DEADLINE_EXCEEDED:
                            report.n_deadline += 1
                        else:
                            report.n_failed += 1
                with lock:
                    report.n_retries += client.n_retries

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(self.concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return report

    def _run_multiprocess(self, requests: list[tuple[str, dict[str, Any]]],
                          start_barrier: bool) -> LoadReport:
        """Fan the mix out over ``processes`` child generator processes."""
        ctx = multiprocessing.get_context("spawn")
        slices = [requests[i::self.processes] for i in range(self.processes)]
        barrier = ctx.Barrier(self.processes) if start_barrier else None
        queue: multiprocessing.Queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_drive_slice,
                args=(self.host, self.port, self.concurrency, self.timeout,
                      self.retries, part, barrier, queue),
                daemon=True)
            for part in slices if part
        ]
        for p in procs:
            p.start()
        report = LoadReport(concurrency=self.concurrency * len(procs))
        for _ in procs:
            part = queue.get()
            report.n_requests += part["n_requests"]
            report.n_ok += part["n_ok"]
            report.n_rejected += part["n_rejected"]
            report.n_deadline += part["n_deadline"]
            report.n_failed += part["n_failed"]
            report.n_retries += part["n_retries"]
            report.latencies_ms.extend(part["latencies_ms"])
        for p in procs:
            p.join()
        return report

    def _server_counters(self) -> dict[str, float]:
        try:
            with ServeClient(self.host, self.port, timeout=self.timeout) as client:
                return dict(client.stats().get("counters", {}))
        except (OSError, ServeError):  # stats are best-effort decoration
            return {}


def _drive_slice(host: str, port: int, concurrency: int, timeout: float,
                 retries: int, requests: list[tuple[str, dict[str, Any]]],
                 barrier: Any, queue: Any) -> None:
    """One child generator process: thread-drive a slice, queue the tallies.

    Module-level (not a closure) so the spawn start method can pickle it;
    the cross-process barrier aligns the children's bursts the same way
    the in-process thread barrier aligns threads.
    """
    gen = LoadGenerator(host, port, concurrency=concurrency,
                        timeout=timeout, retries=retries)
    if barrier is not None:
        barrier.wait(timeout=timeout)
    report = gen._run_threads(requests, start_barrier=True)
    queue.put({
        "n_requests": report.n_requests,
        "n_ok": report.n_ok,
        "n_rejected": report.n_rejected,
        "n_deadline": report.n_deadline,
        "n_failed": report.n_failed,
        "n_retries": report.n_retries,
        "latencies_ms": report.latencies_ms,
    })


# --------------------------------------------------------------------------
# Smoke mode (CI) and the command-line front end
# --------------------------------------------------------------------------

def _smoke_requests(n_requests: int) -> list[tuple[str, dict[str, Any]]]:
    """A mixed workload over two small topologies plus health probes.

    Repeating two plan payloads guarantees single-flight joins and/or
    response-cache hits under any thread interleaving; a 150 ms synthetic
    service time keeps the first flights open long enough that a concurrent
    burst *must* coalesce.
    """
    from repro.io.network_json import network_to_dict
    from repro.network.builder import build_paper_network

    nets = [network_to_dict(build_paper_network(n=24, q=3, seed=s)) for s in (1, 2)]
    requests: list[tuple[str, dict[str, Any]]] = []
    for i in range(n_requests):
        if i % 5 == 4:
            requests.append(("health", {}))
        else:
            requests.append(("plan", {"network": nets[(i % 10) // 5],
                                      "horizon": 200.0, "delay": 0.15}))
    return requests


def run_smoke(*, host: str | None = None, port: int | None = None,
              n_requests: int = 50, concurrency: int = 8) -> int:
    """The CI smoke: drive a mixed load, assert clean serving, return 0/1.

    Without ``host``/``port`` an in-process thread-mode server on an
    ephemeral port is spawned for the duration. Asserts every response was
    ``ok`` (no failures, no rejections — the smoke queue is sized for the
    load) and that at least one request was coalesced onto another's
    in-flight computation.
    """
    from repro.serve.server import ServeConfig, ServerThread

    spawned = None
    if host is None or port is None:
        spawned = ServerThread(ServeConfig(
            executor="thread", workers=2, queue_limit=max(64, n_requests),
            default_deadline=120.0))
        host, port = spawned.start()
    try:
        gen = LoadGenerator(host, port, concurrency=concurrency)
        report = gen.run(_smoke_requests(n_requests))
    finally:
        if spawned is not None:
            spawned.stop()
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    failures: list[str] = []
    if report.n_ok != report.n_requests:
        failures.append(f"expected {report.n_requests} ok responses, got {report.n_ok} "
                        f"(rejected={report.n_rejected}, deadline={report.n_deadline}, "
                        f"failed={report.n_failed})")
    if report.coalesced + report.plan_cache_hits < 1:
        failures.append("expected at least one coalesced or response-cached plan")
    for f in failures:
        print(f"SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"smoke ok: {report.n_ok}/{report.n_requests} responses, "
              f"{report.coalesced} coalesced, {report.plan_cache_hits} cache hits, "
              f"{report.planner_runs} planner runs", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.client`` — load generator / smoke harness."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-client",
        description="Load generator for the repro planning service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7351)
    parser.add_argument("--requests", type=int, default=50, metavar="N")
    parser.add_argument("--concurrency", type=int, default=8, metavar="N")
    parser.add_argument("--processes", type=int, default=1, metavar="N",
                        help="generator processes (each drives --concurrency "
                             "threads over its own slice; >1 avoids a "
                             "single-process GIL bottleneck against a fleet)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="client retry budget for overloaded/connection-"
                             "reset responses (jittered exponential backoff)")
    parser.add_argument("--smoke", action="store_true",
                        help="spawn an in-process server, drive the mixed "
                             "workload, assert clean serving (used by CI)")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(n_requests=args.requests, concurrency=args.concurrency)
    gen = LoadGenerator(args.host, args.port, concurrency=args.concurrency,
                        retries=args.retries, processes=args.processes)
    report = gen.run(_smoke_requests(args.requests))
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.n_failed == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
