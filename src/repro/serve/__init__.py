"""repro.serve — the long-lived asyncio planning service.

Turns the library's one-shot planners into an online dispatcher: a
stdlib-only TCP server speaking newline-delimited JSON
(:mod:`repro.serve.protocol`) that keeps warm
:class:`~repro.plan.cache.PlanArtifactCache` state resident and answers
``plan`` / ``simulate`` / ``stats`` / ``health`` requests under latency
deadlines — with single-flight request coalescing, bounded-queue
backpressure and graceful drain (:mod:`repro.serve.server`). CPU-bound
work runs on a process (or thread) pool (:mod:`repro.serve.worker`);
:mod:`repro.serve.client` is the blocking client plus the concurrent
load generator / smoke harness.

Start one with ``repro serve`` or embed it::

    from repro.serve import PlanningServer, ServeConfig
    server = PlanningServer(ServeConfig(port=7351, workers=4))
    await server.start()

See ``docs/ARCHITECTURE.md`` (Serving section) for the request lifecycle
and ``docs/OBSERVABILITY.md`` for the ``serve.*`` metrics.
"""

from repro.serve.client import LoadGenerator, LoadReport, ServeClient, percentile
from repro.serve.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    Request,
    decode_request,
    decode_response,
    encode,
    error_response,
    ok_response,
)
from repro.serve.server import (
    PlanningServer,
    ServeConfig,
    ServerThread,
    plan_key,
    serve,
)

__all__ = [
    "ERROR_CODES",
    "LoadGenerator",
    "LoadReport",
    "PROTOCOL_VERSION",
    "PlanningServer",
    "REQUEST_TYPES",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "decode_request",
    "decode_response",
    "encode",
    "error_response",
    "ok_response",
    "percentile",
    "plan_key",
    "serve",
]
