"""The asyncio planning service.

A long-lived dispatcher for the online charging problem: it keeps warm
:class:`~repro.plan.cache.PlanArtifactCache` state resident and answers
many ``plan``/``simulate`` requests against it, instead of paying the
one-shot CLI's cold start per query. The shape mirrors an inference
server:

* **Transport** — newline-delimited JSON over TCP
  (:mod:`repro.serve.protocol`); one request line in, one response line
  out, per-connection order preserved, concurrency across connections.
* **Offload** — CPU-bound commands run on a bounded executor
  (``process`` mode: a :class:`~concurrent.futures.ProcessPoolExecutor`
  with a per-process warm artifact cache; ``thread`` mode: a
  :class:`~concurrent.futures.ThreadPoolExecutor` sharing one locked
  cache — used by tests, the smoke harness and NumPy-heavy workloads that
  release the GIL). The event loop itself never plans.
* **Single-flight coalescing** — concurrent ``plan`` requests with the
  same plan key (``geometry_fingerprint`` × cycles digest × horizon ×
  refine × base — i.e. geometry × the coverage structure) share ONE
  executor job; late joiners await the same future
  (``serve.coalesced``). Completed plans land in a parent-side LRU of
  response documents (``serve.plan_cache.hit``), on top of whatever the
  workers' artifact caches reuse stage-by-stage.
* **Backpressure** — admission is bounded by ``queue_limit`` in-flight
  jobs; beyond it the server answers a structured ``overloaded`` error
  immediately (``serve.rejected``) instead of queueing without bound.
* **Deadlines** — every request gets ``deadline`` seconds (its own or the
  server default); on expiry the waiter receives ``deadline_exceeded``
  and a job nobody is waiting for any more is cancelled (best effort — a
  job already running on a process worker finishes and is discarded).
* **Graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
  requests finish (up to ``drain_timeout``), answer anything new with
  ``shutting_down``, then tear the executor down.

Everything is stdlib; observability goes through :mod:`repro.obs`
(``serve.*`` counters, the ``serve.request`` span, the
``serve.queue_depth`` gauge) and is exposed live on the ``stats`` request.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import threading
import time
from pathlib import Path
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigError, ReproError, ServeError
from repro.io.files import unwrap_envelope
from repro.io.network_json import network_from_dict
from repro.kernels import get_backend
from repro.obs.instrument import Instrumentation, trim_trace
from repro.obs.live import DeltaEmitter, quantile_table
from repro.obs.log import get_logger
from repro.plan.cache import PlanArtifactCache
from repro.plan.store import PlanArtifactStore
from repro.serve.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL,
    OVERLOADED,
    PROTOCOL_VERSION,
    SHUTTING_DOWN,
    Request,
    WatchUpgrade,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from repro.serve.worker import (execute_plan, execute_simulate,
                                flush_worker_cache, init_worker)

__all__ = ["ServeConfig", "PlanningServer", "ServerThread", "serve", "plan_key"]

log = get_logger(__name__)

_EXECUTORS = ("process", "thread")

#: Per-connection bound on remembered request ids (duplicate detection).
#: Requests on one connection are answered in order, so a well-behaved
#: client reusing ids after this many requests is indistinguishable from a
#: fresh id — the window only needs to catch accidental immediate reuse.
_SEEN_IDS_LIMIT = 1024


@dataclass
class ServeConfig:
    """Tunables of one :class:`PlanningServer`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`PlanningServer.address`).
    workers:
        Executor width — planner processes (``executor="process"``) or
        threads (``"thread"``). Must be ``>= 1``.
    executor:
        ``"process"`` (default; true CPU parallelism, per-process artifact
        caches) or ``"thread"`` (one shared, locked artifact cache; cheap
        startup — what tests and the smoke harness use).
    queue_limit:
        Maximum in-flight executor jobs (running + queued). Admission past
        this answers ``overloaded`` immediately.
    default_deadline:
        Per-request deadline in seconds when the request names none;
        ``None``/``0`` disables the default.
    drain_timeout:
        Seconds :meth:`PlanningServer.shutdown` waits for in-flight
        requests before cancelling them.
    max_line_bytes:
        Stream limit for one request line (networks are inlined in ``plan``
        requests, so this bounds the accepted network size).
    cache_entries:
        Capacity handed to each worker's
        :class:`~repro.plan.cache.PlanArtifactCache`.
    cache_dir:
        Optional directory of a shared on-disk
        :class:`~repro.plan.store.PlanArtifactStore` (tier 2). Workers
        warm-start their in-memory caches from it at pool boot, read
        through it on memory misses, write computed artifacts through it,
        and flush to it on drain — so a restarted server plans warm.
        ``None`` (default) keeps the service purely in-memory.
    plan_responses:
        Capacity of the parent-side LRU of completed ``plan`` response
        documents (exact-repeat hits without touching a worker). ``0``
        disables it.
    kernel_backend:
        Default numeric kernel backend (:mod:`repro.kernels`) for the
        workers; a request naming ``kernel_backend`` in its payload
        overrides it per call. ``None`` keeps the library default
        (``REPRO_KERNEL_BACKEND`` or ``reference``). Validated eagerly —
        an unknown name fails construction with a
        :class:`~repro.errors.ConfigError`.
    max_trace_events:
        The server trims its own trace to this many events so a long-lived
        process does not grow memory with request count.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    executor: str = "process"
    queue_limit: int = 32
    default_deadline: float | None = 30.0
    drain_timeout: float = 10.0
    max_line_bytes: int = 8 * 1024 * 1024
    cache_entries: int | None = 4096
    cache_dir: str | None = None
    plan_responses: int = 256
    max_trace_events: int = 10_000
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"serve: workers must be >= 1, got {self.workers}")
        if self.executor not in _EXECUTORS:
            raise ConfigError(
                f"serve: executor must be one of {_EXECUTORS}, got {self.executor!r}")
        if self.queue_limit < 1:
            raise ConfigError(f"serve: queue_limit must be >= 1, got {self.queue_limit}")
        if self.plan_responses < 0:
            raise ConfigError(
                f"serve: plan_responses must be >= 0, got {self.plan_responses}")
        if self.kernel_backend is not None:
            get_backend(self.kernel_backend)  # unknown name -> ConfigError now


def plan_key(params: dict[str, Any]) -> tuple:
    """The single-flight / response-cache key of one ``plan`` request.

    ``(geometry fingerprint, cycles digest, horizon, refine, base)`` — the
    exact inputs Algorithm 3's output depends on. Two requests coalesce iff
    planning them would do identical work: the fingerprint pins the metric
    geometry and the cycles digest pins the quantisation (hence every
    coverage set) built on top of it. The load-testing ``delay`` knob is
    deliberately excluded. A ``kernel_backend`` selection joins the key
    only when that backend is *not* output-exact — exact backends produce
    byte-identical plans, so coalescing across them is correct and free.

    Raises
    ------
    ServeError
        (``bad_request``) when the envelope around the network is invalid
        or the named kernel backend is unknown; ``ReproError`` propagates
        from a malformed network document.
    """
    net = network_from_dict(unwrap_envelope(params.get("network"), "sensor-network"))
    try:
        horizon = float(params["horizon"])
        refine = bool(params.get("refine", False))
        base = int(params.get("base", 2))
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(
            f"plan request needs a numeric 'horizon' (and optional 'refine'/'base'): {exc}",
            code=BAD_REQUEST) from exc
    backend = params.get("kernel_backend")
    kernel = ""
    if backend is not None:
        try:
            kb = get_backend(str(backend))
        except ConfigError as exc:
            raise ServeError(str(exc), code=BAD_REQUEST) from exc
        if not kb.exact:
            kernel = kb.name
    cycles = hashlib.sha256(
        np.ascontiguousarray(net.cycles, dtype=np.float64).tobytes()).hexdigest()
    return (net.geometry_fingerprint, cycles, horizon, refine, base, kernel)


class _Flight:
    """One in-flight ``plan`` computation and its waiter count."""

    __slots__ = ("task", "waiters")

    def __init__(self, task: asyncio.Task) -> None:
        self.task = task
        self.waiters = 0


class PlanningServer:
    """The asyncio TCP planning service (see the module docstring).

    Construct, then ``await start()`` inside a running event loop; the
    bound address is :attr:`address`. Drive the lifetime with
    :meth:`wait_stopped` / :meth:`shutdown` (or
    :meth:`install_signal_handlers` for SIGTERM/SIGINT). ``obs`` is the
    live instrumentation served by ``stats``; pass your own to share it
    with the embedding process.
    """

    def __init__(self, config: ServeConfig | None = None,
                 obs: Instrumentation | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.obs = obs if obs is not None else Instrumentation()
        self._server: asyncio.base_events.Server | None = None
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._shared_cache: PlanArtifactCache | None = None
        self._shared_store: PlanArtifactStore | None = None
        self._flights: dict[tuple, _Flight] = {}
        self._responses: OrderedDict[tuple, dict[str, Any]] = OrderedDict()
        self._jobs: set[asyncio.Task] = set()
        self._conns: set[asyncio.Task] = set()
        self._pending = 0
        self._busy = 0
        self._draining = False
        self._stopping = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._t0 = time.monotonic()

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started", code=INTERNAL)
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        """Create the executor and start listening."""
        if self._server is not None:
            raise ServeError("server already started", code=INTERNAL)
        cfg = self.config
        if cfg.executor == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=cfg.workers, initializer=init_worker,
                initargs=(cfg.cache_entries, cfg.cache_dir, cfg.kernel_backend))
        else:
            self._shared_cache = PlanArtifactCache(cfg.cache_entries)
            if cfg.cache_dir is not None:
                self._shared_store = PlanArtifactStore(cfg.cache_dir)
                loaded = self._shared_store.warm(self._shared_cache, obs=self.obs)
                log.info("repro serve: warm-started %d artifact(s) from %s",
                         loaded, cfg.cache_dir)
            self._executor = ThreadPoolExecutor(
                max_workers=cfg.workers, thread_name_prefix="repro-serve")
        self._t0 = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port, limit=cfg.max_line_bytes)

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (no-op where unsupported)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda s=sig: asyncio.ensure_future(self._on_signal(s)))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def _on_signal(self, sig: int) -> None:  # pragma: no cover - signal path
        log.info("repro serve: received signal %s, draining ...", sig)
        await self.shutdown()

    async def wait_stopped(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting work, optionally drain in-flight requests, stop.

        Idempotent. With ``drain`` (the default) in-flight requests get up
        to ``drain_timeout`` seconds to complete and write their responses;
        requests arriving while draining are answered ``shutting_down``.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and not self._idle.is_set():
            try:
                await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout)
            except asyncio.TimeoutError:
                log.warning("repro serve: drain timed out with %d request(s) busy",
                            self._busy)
        for task in list(self._jobs) + list(self._conns):
            task.cancel()
        if self._jobs or self._conns:
            await asyncio.gather(*self._jobs, *self._conns, return_exceptions=True)
        self._flush_stores()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._stopped.set()

    def _flush_stores(self) -> None:
        """Best-effort persist of warm caches on drain (``cache_dir`` only).

        Write-through keeps the store current during normal operation, so
        this only saves artifacts that existed purely in memory (and is
        skipped silently if the pool is already broken).
        """
        if self.config.cache_dir is None:
            return
        if self._shared_store is not None and self._shared_cache is not None:
            self._shared_store.flush(self._shared_cache, obs=self.obs)
            return
        if isinstance(self._executor, ProcessPoolExecutor):
            try:
                futures = [self._executor.submit(flush_worker_cache)
                           for _ in range(self.config.workers)]
                for fut in futures:
                    fut.result(timeout=self.config.drain_timeout)
            except Exception:  # pragma: no cover - broken pool at shutdown
                log.warning("repro serve: worker cache flush skipped (pool down)")

    # ------------------------------------------------------------ connections
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        seen_ids: OrderedDict[str, None] = OrderedDict()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # request line exceeded max_line_bytes
                    writer.write(encode(error_response(
                        None, BAD_REQUEST,
                        f"request line exceeds {self.config.max_line_bytes} bytes")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self._handle_line(line, seen_ids)
                    if not isinstance(response, WatchUpgrade):
                        writer.write(encode(response))
                        await writer.drain()
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
                if isinstance(response, WatchUpgrade):
                    await self._watch(response.req, reader, writer)
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle connection tasks; ending cleanly keeps
            # asyncio's stream machinery from logging the cancellation.
            pass
        finally:
            if task is not None:
                self._conns.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes,
                           seen_ids: "OrderedDict[str, None] | None" = None,
                           ) -> "dict[str, Any] | WatchUpgrade":
        o = self.obs
        o.incr("serve.requests")
        try:
            req = decode_request(line)
        except ServeError as exc:
            o.incr("serve.failed")
            o.incr(f"serve.failed.{exc.code}")
            return error_response(None, exc.code, str(exc))
        if seen_ids is not None and req.id is not None:
            # Ids are free-form JSON; canonicalise to a hashable key.
            id_key = json.dumps(req.id, sort_keys=True, default=str)
            if id_key in seen_ids:
                o.incr("serve.duplicate_id")
                o.incr("serve.failed")
                o.incr(f"serve.failed.{BAD_REQUEST}")
                return error_response(
                    req.id, BAD_REQUEST,
                    f"duplicate request id {req.id!r} on this connection")
            seen_ids[id_key] = None
            while len(seen_ids) > _SEEN_IDS_LIMIT:
                seen_ids.popitem(last=False)
        o.incr(f"serve.requests.{req.type}")
        if req.type == "watch":
            # Validated here; the connection handler runs the push loop
            # outside the busy/idle accounting (see WatchUpgrade).
            try:
                float(req.params.get("interval", 1.0))
            except (TypeError, ValueError):
                o.incr("serve.failed")
                o.incr(f"serve.failed.{BAD_REQUEST}")
                return error_response(
                    req.id, BAD_REQUEST,
                    f"watch interval must be a number of seconds, "
                    f"got {req.params.get('interval')!r}")
            return WatchUpgrade(req)
        with o.span("serve.request", _mark=True, type=req.type):
            if req.type == "health":
                response = ok_response(req.id, self._health())
            elif req.type == "stats":
                response = ok_response(req.id, self._stats())
            elif req.type == "plan":
                response = await self._plan(req)
            else:
                response = await self._simulate(req)
        if not response["ok"]:
            o.incr("serve.failed")
            o.incr(f"serve.failed.{response['error']['code']}")
        trim_trace(o, self.config.max_trace_events)
        return response

    # ------------------------------------------------------------ watch stream
    async def _watch(self, req: Request, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Server-push subscription: one metric-delta frame per interval.

        Strictly opt-in: the :class:`~repro.obs.live.DeltaEmitter` exists
        only for the lifetime of a subscription, so a server nobody watches
        does no extra per-request work. The loop ends when the client
        closes its end (EOF) or the server starts draining.
        """
        interval = max(0.05, float(req.params.get("interval", 1.0)))
        source = str(req.params.get("source") or "serve")
        emitter = DeltaEmitter(self.obs, source=source)
        self.obs.incr("serve.watch.subscribed")
        writer.write(encode(ok_response(req.id, {
            "stream": "watch", "role": "serve", "source": source,
            "interval": interval, "protocol": PROTOCOL_VERSION})))
        await writer.drain()
        eof = asyncio.ensure_future(reader.read())
        try:
            while True:
                done, _ = await asyncio.wait({eof}, timeout=interval)
                closed = bool(done) or writer.is_closing()
                if closed or self._stopping:
                    break
                writer.write(encode(emitter.frame().to_dict()))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            eof.cancel()
            self.obs.incr("serve.watch.closed")

    # ---------------------------------------------------------------- queries
    def _health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime": time.monotonic() - self._t0,
            "pending": self._pending,
            "workers": self.config.workers,
            "executor": self.config.executor,
        }

    def _stats(self) -> dict[str, Any]:
        def expand(stats: dict) -> dict[str, dict[str, float]]:
            return {name: {"count": s.count, "total": s.total, "mean": s.mean,
                           "min": s.vmin, "max": s.vmax}
                    for name, s in stats.items()}

        return {
            "uptime": time.monotonic() - self._t0,
            "pending": self._pending,
            "draining": self._draining,
            "plan_responses_cached": len(self._responses),
            "counters": dict(self.obs.counters),
            "timers": expand(self.obs.timers),
            "series": expand(self.obs.series),
            # Per-kind extras for the fleet aggregation (obs.live rules):
            # current gauge readings (last observed value), open span
            # counts, raw mergeable sketches, and readable quantiles.
            "gauges": dict(self.obs.gauges),
            "active_spans": dict(self.obs.active),
            "sketches": {k: v.to_dict() for k, v in self.obs.sketches.items()},
            "quantiles": quantile_table(
                self.obs.sketches,
                {k: (v.count, v.total) for k, v in self.obs.timers.items()}),
            # process workers own their caches; only thread mode can report
            "artifact_cache": (None if self._shared_cache is None
                               else self._shared_cache.info()),
            "artifact_store": (None if self._shared_store is None
                               else self._shared_store.stats()),
        }

    # --------------------------------------------------------------- commands
    async def _plan(self, req: Request) -> dict[str, Any]:
        if self._draining:
            return error_response(req.id, SHUTTING_DOWN, "server is draining")
        try:
            key = plan_key(req.params)
        except ServeError as exc:
            return error_response(req.id, exc.code, str(exc))
        except ReproError as exc:
            return error_response(req.id, BAD_REQUEST, str(exc))

        cached = self._responses.get(key)
        if cached is not None:
            self._responses.move_to_end(key)
            self.obs.incr("serve.plan_cache.hit")
            return ok_response(req.id, dict(cached, cached=True))

        flight = self._flights.get(key)
        coalesced = flight is not None
        if flight is None:
            rejected = self._admit(req)
            if rejected is not None:
                return rejected
            task = asyncio.get_running_loop().create_task(self._run_plan(key, req.params))
            self._jobs.add(task)
            task.add_done_callback(self._jobs.discard)
            flight = self._flights[key] = _Flight(task)
        else:
            self.obs.incr("serve.coalesced")
        flight.waiters += 1
        result = await self._await_job(req, flight.task, flight=flight)
        if isinstance(result, dict) and result.get("ok") is False:
            return result  # already an error response
        if coalesced:
            result = dict(result, coalesced=True)
        return ok_response(req.id, result)

    async def _simulate(self, req: Request) -> dict[str, Any]:
        if self._draining:
            return error_response(req.id, SHUTTING_DOWN, "server is draining")
        rejected = self._admit(req)
        if rejected is not None:
            return rejected
        task = asyncio.get_running_loop().create_task(
            self._run_job(execute_simulate, req.params))
        self._jobs.add(task)
        task.add_done_callback(self._jobs.discard)
        result = await self._await_job(req, task, flight=None)
        if isinstance(result, dict) and result.get("ok") is False:
            return result
        return ok_response(req.id, result)

    # -------------------------------------------------------------- execution
    def _admit(self, req: Request) -> dict[str, Any] | None:
        """Admission control: ``None`` admits, a response dict rejects."""
        if self._pending >= self.config.queue_limit:
            self.obs.incr("serve.rejected")
            return error_response(
                req.id, OVERLOADED,
                f"admission queue full ({self._pending} in flight, "
                f"limit {self.config.queue_limit}); retry later")
        self._pending += 1
        self.obs.observe("serve.queue_depth", self._pending)
        return None

    def _submit(self, fn: Callable, params: dict[str, Any]) -> "asyncio.Future":
        loop = asyncio.get_running_loop()
        if self._shared_cache is not None:  # thread mode: pass the shared tiers
            return loop.run_in_executor(
                self._executor, partial(fn, params, cache=self._shared_cache,
                                        store=self._shared_store,
                                        kernel_backend=self.config.kernel_backend))
        return loop.run_in_executor(self._executor, fn, params)

    async def _run_job(self, fn: Callable, params: dict[str, Any]) -> dict[str, Any]:
        """One admitted executor job; always releases its admission slot.

        A worker failure hard enough to break the pool (e.g. a killed
        process — ``BrokenProcessPool``) would otherwise leave every later
        request failing against a dead executor; the pool is rebuilt once
        and the triggering request still fails (``internal``), which is the
        honest answer — its job may have half-run.
        """
        executor = self._executor
        try:
            result, snap = await self._submit(fn, params)
        except BrokenExecutor:
            self._rebuild_executor(executor)
            raise
        finally:
            self._pending -= 1
            self.obs.observe("serve.queue_depth", self._pending)
        self.obs.merge(snap)
        return result

    def _rebuild_executor(self, broken: object) -> None:
        """Replace a broken pool with a fresh one (idempotent per pool).

        ``broken`` is the executor the failing job was submitted to;
        concurrent jobs that died with the same pool all call this, and the
        identity guard makes sure only the first rebuilds.
        """
        if self._stopping or self._executor is not broken:
            return
        self.obs.incr("serve.executor_rebuilt")
        log.warning("repro serve: executor broke; rebuilding the %s pool",
                    self.config.executor)
        cfg = self.config
        if cfg.executor == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=cfg.workers, initializer=init_worker,
                initargs=(cfg.cache_entries, cfg.cache_dir, cfg.kernel_backend))
        else:  # pragma: no cover - thread pools break only via initializer
            self._executor = ThreadPoolExecutor(
                max_workers=cfg.workers, thread_name_prefix="repro-serve")
        broken.shutdown(wait=False, cancel_futures=True)

    async def _run_plan(self, key: tuple, params: dict[str, Any]) -> dict[str, Any]:
        """A plan job: a :meth:`_run_job` that is single-flight registered."""
        try:
            result = await self._run_job(execute_plan, params)
        finally:
            self._flights.pop(key, None)
        self._remember(key, result)
        return result

    async def _await_job(self, req: Request, task: asyncio.Task,
                         *, flight: _Flight | None) -> dict[str, Any]:
        """Await a job under the request's deadline.

        Returns the job's result dict, or a complete *error response* dict
        (distinguished by ``ok: False``) on deadline/failure. Coalesced
        jobs are shielded so one waiter's deadline never cancels the shared
        computation; a flight whose last waiter timed out *is* cancelled
        (best effort — an already-running process job completes and is
        discarded, but a queued one never starts).
        """
        deadline = req.deadline if req.deadline is not None else self.config.default_deadline
        aw = asyncio.shield(task) if flight is not None else task
        try:
            if deadline:
                result = await asyncio.wait_for(aw, deadline)
            else:
                result = await aw
            return result
        except asyncio.TimeoutError:
            self.obs.incr("serve.deadline")
            if flight is not None:
                flight.waiters -= 1
                if flight.waiters <= 0 and not task.done():
                    task.cancel()
            return error_response(
                req.id, DEADLINE_EXCEEDED, f"deadline of {deadline:g}s exceeded")
        except asyncio.CancelledError:
            if task.cancelled():  # the job was cancelled, not this handler
                return error_response(req.id, SHUTTING_DOWN, "job was cancelled")
            raise
        except ReproError as exc:
            return error_response(req.id, BAD_REQUEST, str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't kill the conn
            return error_response(req.id, INTERNAL, f"{type(exc).__name__}: {exc}")

    def _remember(self, key: tuple, result: dict[str, Any]) -> None:
        if self.config.plan_responses <= 0:
            return
        self._responses[key] = result
        self._responses.move_to_end(key)
        while len(self._responses) > self.config.plan_responses:
            self._responses.popitem(last=False)


class ServerThread:
    """A :class:`PlanningServer` on a daemon thread with its own loop.

    The embedding shape used by the integration tests, the load-generator
    smoke mode and the serving benchmarks: blocking code starts a real
    server, talks to it over real sockets, then joins it::

        with ServerThread(ServeConfig(executor="thread", workers=4)) as srv:
            client = ServeClient(*srv.address)
            ...
    """

    def __init__(self, config: ServeConfig | None = None,
                 obs: Instrumentation | None = None) -> None:
        self.config = config if config is not None else ServeConfig(executor="thread",
                                                                    workers=2)
        self.server = PlanningServer(self.config, obs=obs)
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Start the server; returns the bound ``(host, port)``."""
        ready = threading.Event()
        boot_error: list[BaseException] = []

        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def boot() -> None:
                try:
                    await self.server.start()
                    self.address = self.server.address
                except BaseException as exc:  # noqa: BLE001 - reported to starter
                    boot_error.append(exc)
                finally:
                    ready.set()

            loop.run_until_complete(boot())
            if not boot_error:
                loop.run_until_complete(self.server.wait_stopped())
            loop.close()

        self._thread = threading.Thread(target=main, name="repro-serve", daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):
            raise ServeError("server thread did not start within 30s")
        if boot_error:
            raise boot_error[0]
        assert self.address is not None
        return self.address

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and stop the server, then join its thread."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            fut = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), self._loop)
            try:
                fut.result(timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve(config: ServeConfig | None = None,
          obs: Instrumentation | None = None,
          port_file: str | None = None) -> int:
    """Blocking entry point: run a server until SIGTERM/SIGINT (the CLI).

    ``port_file``, when given, receives ``host:port`` (atomically published)
    once the listening socket is bound — how a fleet supervisor learns the
    ephemeral port of a ``--port 0`` shard subprocess.

    Returns a process exit code.
    """
    server = PlanningServer(config, obs=obs)

    async def main() -> None:
        await server.start()
        server.install_signal_handlers()
        host, port = server.address
        if port_file is not None:
            tmp = Path(f"{port_file}.tmp")
            tmp.write_text(f"{host}:{port}\n")
            os.replace(tmp, port_file)
        cfg = server.config
        log.info("repro serve: listening on %s:%d (%s executor x %d, queue %d, "
                 "protocol v%d)", host, port, cfg.executor, cfg.workers,
                 cfg.queue_limit, PROTOCOL_VERSION)
        await server.wait_stopped()
        log.info("repro serve: stopped")

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0
