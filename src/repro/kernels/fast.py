"""The ``fast`` kernel backend: engineered hot paths, exact outputs.

Every kernel here is **move-for-move identical** to the ``reference``
backend (:mod:`repro.graphs.mst`, :mod:`repro.tsp.improve`) — same edges
in the same discovery order, same tours, same ``two_opt.*``/``or_opt.*``
counter values — it just gets there with less work:

* :func:`prim_mst` — delegates to the reference: the dense NumPy Prim's
  contiguous full-row scan measured faster than every frontier-shrinking
  variant tried (the gathers a compacted frontier needs cost more per
  element than the shrink saves). The dense-MST win in this backend is
  the *incremental* route instead —
  :func:`repro.rooted.incremental.extend_q_rooted_msf` skips the rebuild
  entirely.
* :func:`two_opt` — neighbour-list 2-opt with don't-look bits: instead
  of scanning all ``k - i - 1`` reversal endpoints per anchor, only
  endpoints that *can* improve are evaluated — a provably exact pruning
  built from each node's ``M+1`` nearest neighbours plus the current
  long tour edges. The delta expression keeps the reference's operation
  order, so every float — and therefore every ``argmin`` tie-break — is
  bitwise identical, and the per-pass move sequence matches the
  reference move for move.
* :func:`or_opt` — the ``O(n)`` inner ``(j, flip)`` scan per segment is
  one vectorised expression; the first-maximum selection reproduces the
  reference's strict-improvement first-best tie-break (lowest ``j``,
  un-flipped before flipped).

Exactness is enforced, not assumed: ``repro check`` runs a
reference-vs-fast differential (the ``kernels`` check) in fuzz and
selftest, and the property suite compares both backends on random
instances.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import KernelBackend, register_backend
from repro.obs.instrument import Instrumentation, ensure
from repro.tsp.tour import Tour

__all__ = ["BACKEND", "register", "prim_mst", "two_opt", "or_opt"]

#: Same strict-improvement guard as :mod:`repro.tsp.improve`.
_EPS = 1e-10

#: Neighbour-list width for the 2-opt candidate pruning (``M+1`` nearest
#: per node, self included). Pruning is exact for any value; this only
#: trades setup cost against fallback frequency.
_M = 64

#: Initial / maximum anchors evaluated per blocked candidate scan.
_B0 = 48
_BCAP = 1024

#: Tours shorter than this go straight to the reference scan — the
#: neighbour-list setup would cost more than it saves.
_SMALL_K = 32

Edge = tuple[int, int]


def prim_mst(dist: np.ndarray, *, root: int = 0) -> list[Edge]:
    """Dense Prim; delegates to the reference implementation.

    The reference's full-array scan (argmin + contiguous-row relax, both
    over all ``n`` slots with in-tree entries pinned to ``inf``) is
    already at the practical NumPy floor for a dense matrix: measured
    against it, every frontier-shrinking variant tried here — per-round
    ``np.delete`` compaction, mark-dead with periodic compaction,
    swap-remove with explicit tie repair — came out *slower* at every
    size from 500 to 8000, because the gathers into a shrinking frontier
    (``d[v, remaining]``) cost more per element than the reference's
    contiguous full-row operations save. The real dense-MST wins in this
    backend live elsewhere: the 2-opt/Or-opt improvers below, and the
    *incremental* forest extension
    (:func:`repro.rooted.incremental.extend_q_rooted_msf`) that avoids
    re-running dense Prim altogether.
    """
    from repro.graphs import mst as _ref

    return _ref.prim_mst(dist, root=root)


def two_opt(dist: np.ndarray, tour: Tour, *, max_rounds: int = 50,
            obs: Instrumentation | None = None) -> Tour:
    """Neighbour-list 2-opt with don't-look bits; reference-identical.

    Reference semantics being reproduced: per pass, anchors ``i`` are
    visited in ascending order; each applies the single best (``argmin``,
    lowest-``j`` tie-break) strictly improving move over ``j > i``.

    **Exact pruning.** Reversing ``p[i..j]`` replaces edges ``(a, b)``
    and ``(c_j, s_j)`` by ``(a, c_j)`` and ``(b, s_j)`` (``a = p[i-1]``,
    ``b = p[i]``, ``c_j = p[j]``, ``s_j = p[j+1]``). The delta
    ``(d(a,c_j) + d(b,s_j)) - (d(a,b) + d(c_j,s_j))`` is negative only if
    ``d(a,c_j) < d(a,b)`` *or* ``d(b,s_j) < d(c_j,s_j)`` — no triangle
    inequality needed: were both false, both parenthesised differences
    would be non-negative. So it suffices to evaluate ``j`` where

    * ``c_j`` is one of ``a``'s ``M+1`` nearest nodes closer than
      ``d(a,b)`` (complete unless ``d(a,b)`` exceeds ``a``'s list radius,
      in which case the anchor falls back to a full-row scan), or
    * ``s_j`` is one of ``b``'s ``M+1`` nearest nodes closer than the
      tour edge at ``j`` (complete unless that edge exceeds ``b``'s list
      radius — those "long edge" positions are appended as explicit
      candidates for every anchor).

    Candidate deltas use the reference's float grouping, so when the row
    minimum is improving every full-row minimiser is improving too, hence
    in the candidate set — the lowest-``j`` minimiser over candidates *is*
    the reference ``argmin``. Anchors scanned clean are skipped until a
    reversal touches index ``i - 1`` or below (anchor ``i``'s row reads
    only positions ``{0} ∪ {i-1, …, k-1}`` and the depot never moves), and
    a block walk stops at its first applied move — positions above it are
    stale. The per-pass move sequence, the ``two_opt.passes`` /
    ``two_opt.moves`` counters and the final tour all match the
    reference bit for bit.
    """
    from repro.tsp import improve as _ref

    k = len(tour.order)
    if k < _SMALL_K:  # setup overhead beats the savings on tiny tours
        return _ref.two_opt(dist, tour, max_rounds=max_rounds, obs=obs)
    d = np.asarray(dist)
    nodes = np.asarray(tour.order, dtype=np.intp)
    if d.shape[0] == k:
        # Matrix covers exactly the tour's nodes: index it directly.
        dl = d
        p = nodes.copy()
        relabelled = False
    else:
        dl = d[np.ix_(nodes, nodes)]
        p = np.arange(k, dtype=np.intp)
        relabelled = True
    m_nn = min(_M, k - 1)
    idx_nn = np.argpartition(dl, m_nn, axis=1)[:, :m_nn + 1]
    dist_nn = np.take_along_axis(dl, idx_nn, axis=1)
    nbr_max = dist_nn.max(axis=1)
    t_glob = float(nbr_max.min())

    pos = np.zeros(dl.shape[0], dtype=np.intp)
    pos[p] = np.arange(k)
    # clean[i] == True → anchor i's row is known to hold no improving move.
    clean = np.zeros(k, dtype=bool)
    clean[0] = clean[k - 1] = True  # not anchors

    def edge_vals(lo: int, hi: int) -> np.ndarray:
        # dl[p[t], p[t+1]] for t in [lo, hi], successor wrapping to p[0].
        if hi + 1 < k:
            return dl[p[lo:hi + 1], p[lo + 1:hi + 2]]
        return dl[p[lo:hi + 1], np.concatenate([p[lo + 1:], p[:1]])]

    passes = 0
    moves = 0
    for _ in range(max_rounds):
        improved = False
        passes += 1
        d_edge = edge_vals(0, k - 1)
        i = 1
        B = _B0
        while i <= k - 2:
            rel = np.nonzero(~clean[i:k - 1])[0]
            if rel.size == 0:
                break
            anchors = rel[:B] + i
            nA = anchors.size
            pa = p[anchors - 1]
            pb = p[anchors]
            dab = dl[pa, pb]
            anc_col = anchors[:, None]
            pab = np.concatenate([pa, pb])
            nn_ab = idx_nn[pab]
            dnn_ab = dist_nn[pab]
            jp = pos[nn_ab]
            # c_j in a's list, closer than d(a, b)
            ja = jp[:nA]
            v1 = (dnn_ab[:nA] < dab[:, None]) & (ja > anc_col)
            # s_j in b's list, closer than the tour edge at j
            jb = jp[nA:] - 1
            jb[jb < 0] = k - 1
            v2 = (jb > anc_col) & (dnn_ab[nA:] < d_edge[jb])
            # long-edge positions b's list cannot cover
            lpos = np.nonzero(d_edge > t_glob)[0]
            fallback = dab > nbr_max[pa]
            if lpos.size:
                j3 = np.broadcast_to(lpos, (nA, lpos.size))
                v3 = (j3 > anc_col) & (d_edge[lpos][None, :] > nbr_max[pb][:, None])
                j_all = np.concatenate([ja, jb, j3], axis=1)
                valid = np.concatenate([v1, v2, v3], axis=1)
            else:
                j_all = np.concatenate([ja, jb], axis=1)
                valid = np.concatenate([v1, v2], axis=1)
            # Compact to the valid candidates and reduce per anchor row.
            ridx, cidx = np.nonzero(valid)
            m = ridx.size
            if m:
                jf = j_all[ridx, cidx]
                jnf = jf + 1
                jnf[jnf == k] = 0
                # Reference grouping: (d[a,c] + d[b,s]) - (d[a,b] + d[c,s]).
                t_new = dl[pa[ridx], p[jf]] + dl[pb[ridx], p[jnf]]
                t_old = dab[ridx] + d_edge[jf]
                deltaf = t_new - t_old
                starts = np.searchsorted(ridx, np.arange(nA))
                counts = np.diff(np.append(starts, m))
                # Sentinel keeps every reduceat index valid without
                # disturbing the preceding segment's bounds.
                rowmin = np.minimum.reduceat(np.append(deltaf, np.inf), starts)
                rowmin[counts == 0] = np.inf
                hit = rowmin < -_EPS
                if hit.any():
                    jsel = np.where(deltaf == rowmin[ridx], jf, k)
                    jwin = np.minimum.reduceat(np.append(jsel, k), starts)
                else:
                    jwin = None
            else:
                hit = np.zeros(nA, dtype=bool)
                jwin = None

            next_i = int(anchors[-1]) + 1
            moved = False
            r = 0
            for r in range(nA):
                ia = int(anchors[r])
                if fallback[r]:
                    # d(a, b) exceeds a's list radius: exact full-row scan.
                    a = p[ia - 1]
                    b = p[ia]
                    cs = p[ia + 1:]
                    ds = np.concatenate([p[ia + 2:], p[:1]])
                    row = (dl[a, cs] + dl[b, ds]) - (dl[a, b] + d_edge[ia + 1:])
                    bi = int(np.argmin(row))
                    if row[bi] < -_EPS:
                        do_j = ia + 1 + bi
                    else:
                        clean[ia] = True
                        continue
                elif hit[r]:
                    do_j = int(jwin[r])
                else:
                    clean[ia] = True
                    continue
                # Apply the move, then stop the walk: the reversal dirties
                # anchors <= do_j + 1, which the pre-move rows (and the
                # pre-move dirty set) do not cover. Resume at ia + 1.
                j = do_j
                p[ia:j + 1] = p[ia:j + 1][::-1]
                pos[p[ia:j + 1]] = np.arange(ia, j + 1)
                d_edge[ia - 1:j + 1] = edge_vals(ia - 1, j)
                improved = True
                moves += 1
                moved = True
                clean[1:min(j + 1, k - 2) + 1] = False
                next_i = ia + 1
                break
            # Grow the block while scans come back clean; after a move,
            # shrink toward the observed hit distance.
            if not moved:
                B = min(B * 2, _BCAP)
            else:
                B = max(8, min(_BCAP, 2 * (r + 1)))
            i = next_i
        if not improved:
            break
    final = nodes[p] if relabelled else p
    o = ensure(obs)
    o.incr("two_opt.passes", passes)
    o.incr("two_opt.moves", moves)
    return tour.with_order(final.tolist())


def or_opt(dist: np.ndarray, tour: Tour, *, segment_lengths: tuple[int, ...] = (1, 2, 3),
           max_rounds: int = 20, obs: Instrumentation | None = None) -> Tour:
    """Or-opt with a vectorised ``(j, flip)`` inner scan; reference-identical.

    The reference scans insertion positions ``j`` ascending, un-flipped
    before flipped, keeping the first candidate that *strictly* beats the
    incumbent — i.e. the first candidate attaining the maximum gain wins.
    Interleaving the two flip variants into one ``(2n,)`` gain vector in
    exactly that candidate order and taking ``argmax`` (first maximal
    index) reproduces the selection, and the gain expression keeps the
    reference's float operation order, so ties resolve identically.
    """
    k = len(tour.order)
    if k < 3:
        return tour
    d = np.asarray(dist)
    p = list(tour.order)
    passes = 0
    moves = 0
    n = len(p)

    def refresh(seq: list[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        arr = np.asarray(seq, dtype=np.intp)
        succ = np.concatenate([arr[1:], arr[:1]])
        return arr, succ, d[arr, succ]

    p_arr, succ_arr, d_ab = refresh(p)

    for _ in range(max_rounds):
        improved = False
        passes += 1
        for s in segment_lengths:
            if n - s < 2:
                continue
            i = 1
            while i + s <= n:
                seg0, seg_last = p[i], p[i + s - 1]
                pre, post = p[i - 1], p[(i + s) % n]
                save = d[pre, seg0] + d[seg_last, post] - d[pre, post]
                # Insertion cost at every j, both orientations, reference
                # operation order: (d[a, head] + d[tail, b]) - d[a, b].
                add_f = d[p_arr, seg0] + d[seg_last, succ_arr] - d_ab
                add_t = d[p_arr, seg_last] + d[seg0, succ_arr] - d_ab
                cand = np.empty(2 * n, dtype=np.float64)
                cand[0::2] = save - add_f
                cand[1::2] = save - add_t
                # j inside the removed span [i-1, i+s-1] is not a position.
                cand[2 * (i - 1):2 * (i + s)] = -np.inf
                best = int(np.argmax(cand))
                if cand[best] > _EPS:
                    best_j, best_flip = best // 2, bool(best % 2)
                    seg = p[i:i + s]
                    if best_flip:
                        seg = seg[::-1]
                    rest = p[:i] + p[i + s:]
                    anchor = p[best_j]
                    at = rest.index(anchor)
                    p = rest[:at + 1] + seg + rest[at + 1:]
                    improved = True
                    moves += 1
                    p_arr, succ_arr, d_ab = refresh(p)
                i += 1
        if not improved:
            break
    if p[0] != tour.depot:
        at = p.index(tour.depot)
        p = p[at:] + p[:at]
    o = ensure(obs)
    o.incr("or_opt.passes", passes)
    o.incr("or_opt.moves", moves)
    return tour.with_order(p)


BACKEND = KernelBackend(
    name="fast",
    prim_mst=prim_mst,
    two_opt=two_opt,
    or_opt=or_opt,
    exact=True,
    meta={"description": "compacted-frontier Prim, neighbour-list 2-opt "
                         "with don't-look bits, vectorised Or-opt"},
)


def register() -> None:
    """Idempotently register the fast backend."""
    register_backend(BACKEND, replace=True)
