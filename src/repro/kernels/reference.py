"""The ``reference`` kernel backend — the historical implementations.

This backend is a thin registration shim: the actual code stays where it
always lived (:mod:`repro.graphs.mst`, :mod:`repro.tsp.improve`) and is
wrapped unchanged, so the reference backend is byte-for-byte the
planner's pre-registry behaviour. It is the ground truth every other
backend is differentially checked against (``repro check`` ``kernels``).
"""

from __future__ import annotations

from repro.graphs.mst import prim_mst
from repro.kernels.registry import KernelBackend, register_backend
from repro.tsp.improve import or_opt, two_opt

__all__ = ["BACKEND", "register"]

BACKEND = KernelBackend(
    name="reference",
    prim_mst=prim_mst,
    two_opt=two_opt,
    or_opt=or_opt,
    exact=True,
    meta={"description": "historical implementations (ground truth)"},
)


def register() -> None:
    """Idempotently register the reference backend."""
    register_backend(BACKEND, replace=True)
