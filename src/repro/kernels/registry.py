"""Backend registry for the planner's numeric kernels.

The planner bottoms out in three numeric hot paths — dense Prim MST,
2-opt and Or-opt tour improvement — that every plan request pays on a
cache miss. This module makes those paths *pluggable*: a
:class:`KernelBackend` bundles one implementation of each kernel plus an
``exact`` flag, and call sites dispatch through :func:`resolve` instead
of importing an implementation directly.

Two backends ship built in:

* ``reference`` — byte-for-byte the historical implementations
  (:func:`repro.graphs.mst.prim_mst`, :func:`repro.tsp.improve.two_opt`,
  :func:`repro.tsp.improve.or_opt`). The ground truth.
* ``fast`` — engineered variants (compacted-frontier Prim, blocked 2-opt
  scan with don't-look bits, vectorised Or-opt inner scan) that are
  *move-for-move identical* to the reference under the deterministic
  tie-breaks, just faster. ``exact=True``.

Selection precedence (implemented by :func:`resolve`):

1. an explicit ``backend=`` argument at the call site,
2. the process default set by :func:`set_default_backend` (the CLI's
   ``--kernel-backend`` flag and the serve worker initializer use this),
3. the ``REPRO_KERNEL_BACKEND`` environment variable,
4. ``"reference"``.

Backends whose outputs may legitimately differ from the reference
(``exact=False`` — e.g. a stochastic or approximation-relaxed kernel)
must be distinguishable in the plan-artifact cache; callers fold the
backend name into the cache fingerprint exactly when ``exact`` is false
(see :mod:`repro.plan.pipeline`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError

__all__ = [
    "KernelBackend", "register_backend", "get_backend", "resolve",
    "available_backends", "set_default_backend", "default_backend_name",
    "DEFAULT_BACKEND", "ENV_VAR",
]

#: Environment variable consulted when no explicit/process default is set.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The ultimate fallback backend.
DEFAULT_BACKEND = "reference"


@dataclass(frozen=True)
class KernelBackend:
    """One implementation set for the planner's numeric hot paths.

    Parameters
    ----------
    name:
        Registry key; also what cache fingerprints embed for non-exact
        backends.
    prim_mst:
        Drop-in for :func:`repro.graphs.mst.prim_mst`
        (``(dist, *, root=0) -> list[(parent, child)]``).
    two_opt, or_opt:
        Drop-ins for the :mod:`repro.tsp.improve` improvers
        (``(dist, tour, *, ..., obs=None) -> Tour``).
    exact:
        ``True`` when the backend is guaranteed to produce outputs
        identical to the ``reference`` backend on every input (same
        edges in the same order, same tours). Exact backends share
        plan-artifact cache entries with the reference; non-exact ones
        get their own cache namespace.
    """

    name: str
    prim_mst: Callable[..., Any]
    two_opt: Callable[..., Any]
    or_opt: Callable[..., Any]
    exact: bool = True
    meta: dict[str, Any] = field(default_factory=dict, compare=False)


_REGISTRY: dict[str, KernelBackend] = {}
_LOCK = threading.Lock()
_PROCESS_DEFAULT: str | None = None
_BUILTINS = ("reference", "fast")


def _load_builtins() -> None:
    """Import-register the shipped backends on first registry access.

    Lazy so that ``repro.kernels`` can be imported from the modules the
    reference backend itself wraps (``graphs/mst.py``, ``tsp/improve.py``)
    without an import cycle.
    """
    if all(name in _REGISTRY for name in _BUILTINS):
        return
    from repro.kernels import fast, reference  # noqa: F401  (register on import)

    reference.register()
    fast.register()


def register_backend(backend: KernelBackend, *, replace: bool = False) -> None:
    """Add ``backend`` to the registry.

    Third parties (tests, experimental kernels) call this to expose a new
    ``--kernel-backend`` value. Re-registering an existing name requires
    ``replace=True`` so a typo cannot silently shadow a builtin.
    """
    with _LOCK:
        if backend.name in _REGISTRY and not replace:
            raise ConfigError(
                f"kernel backend {backend.name!r} is already registered")
        _REGISTRY[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend (builtins included)."""
    _load_builtins()
    with _LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; unknown names raise :class:`ConfigError`."""
    _load_builtins()
    with _LOCK:
        try:
            return _REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise ConfigError(
                f"unknown kernel backend {name!r} (available: {known})"
            ) from None


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates eagerly so a bad ``--kernel-backend`` fails at startup, not
    on the first plan request.
    """
    global _PROCESS_DEFAULT
    if name is not None:
        get_backend(name)  # raises ConfigError on unknown names
    _PROCESS_DEFAULT = name


def default_backend_name() -> str:
    """The backend :func:`resolve` would pick absent an explicit argument."""
    if _PROCESS_DEFAULT is not None:
        return _PROCESS_DEFAULT
    env = os.environ.get(ENV_VAR, "").strip()
    return env if env else DEFAULT_BACKEND


def resolve(backend: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a call-site ``backend=`` value to a :class:`KernelBackend`.

    Precedence: explicit argument > process default
    (:func:`set_default_backend`) > ``REPRO_KERNEL_BACKEND`` env var >
    ``"reference"``. Accepts an already-resolved :class:`KernelBackend`
    unchanged so threading a resolved backend through nested calls is
    free.
    """
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend if backend is not None else default_backend_name())
