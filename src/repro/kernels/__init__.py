"""Pluggable numeric kernels for the planner's hot paths.

Public surface of the kernel layer: the registry
(:func:`get_backend` / :func:`resolve` / :func:`available_backends` /
:func:`set_default_backend` / :func:`register_backend`) plus instrumented
dispatch wrappers (:func:`prim_mst`, :func:`two_opt`, :func:`or_opt`)
that call-sites use instead of importing an implementation directly.

Each dispatch wrapper resolves its ``backend`` argument through the
selection precedence (explicit > process default > ``REPRO_KERNEL_BACKEND``
> ``reference``), bumps a ``kernel.<name>.calls`` counter and wraps the
call in a ``kernel.<name>`` span tagged with the backend name, so
per-kernel wall time and call volume show up in ``repro.obs`` stats
regardless of which backend served them.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve,
    set_default_backend,
)
from repro.obs.instrument import Instrumentation, ensure
from repro.tsp.tour import Tour

__all__ = [
    "KernelBackend", "register_backend", "get_backend", "resolve",
    "available_backends", "set_default_backend", "default_backend_name",
    "DEFAULT_BACKEND", "ENV_VAR",
    "prim_mst", "two_opt", "or_opt",
]


def prim_mst(dist: np.ndarray, *, root: int = 0,
             backend: str | KernelBackend | None = None,
             obs: Instrumentation | None = None) -> list[tuple[int, int]]:
    """Dense-matrix MST through the selected backend.

    Semantics of :func:`repro.graphs.mst.prim_mst` (edges oriented away
    from ``root`` in discovery order, lowest-index tie-break); exact
    backends are guaranteed to return the identical edge list.
    """
    kb = resolve(backend)
    o = ensure(obs)
    o.incr("kernel.prim.calls")
    with o.span("kernel.prim", backend=kb.name, n=int(np.asarray(dist).shape[0])):
        return kb.prim_mst(dist, root=root)


def two_opt(dist: np.ndarray, tour: Tour, *, max_rounds: int = 50,
            backend: str | KernelBackend | None = None,
            obs: Instrumentation | None = None) -> Tour:
    """2-opt tour improvement through the selected backend.

    Semantics of :func:`repro.tsp.improve.two_opt` (best move per anchor,
    lowest-``j`` tie-break, strict improvement); exact backends return
    the identical tour and counter values.
    """
    kb = resolve(backend)
    o = ensure(obs)
    o.incr("kernel.two_opt.calls")
    with o.span("kernel.two_opt", backend=kb.name, k=len(tour.order)):
        return kb.two_opt(dist, tour, max_rounds=max_rounds, obs=obs)


def or_opt(dist: np.ndarray, tour: Tour, *,
           segment_lengths: tuple[int, ...] = (1, 2, 3), max_rounds: int = 20,
           backend: str | KernelBackend | None = None,
           obs: Instrumentation | None = None) -> Tour:
    """Or-opt segment relocation through the selected backend.

    Semantics of :func:`repro.tsp.improve.or_opt` (first-best strict
    improvement, lowest ``j`` then un-flipped first on ties); exact
    backends return the identical tour and counter values.
    """
    kb = resolve(backend)
    o = ensure(obs)
    o.incr("kernel.or_opt.calls")
    with o.span("kernel.or_opt", backend=kb.name, k=len(tour.order)):
        return kb.or_opt(dist, tour, segment_lengths=segment_lengths,
                         max_rounds=max_rounds, obs=obs)
