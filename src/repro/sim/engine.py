"""The event-driven simulation loop.

The engine advances time between *events*, draining energy exactly
(piecewise-constant rates integrate in closed form — no per-tick error).
Events, processed in this order when coincident:

1. **Slot boundary** — the workload's true rates change; the policy's
   ``observe`` hook fires with fresh monitored data.
2. **Policy dispatch** — if the policy asked for control now, it may return
   a charging scheduling, which is executed instantaneously: every visited
   sensor is restored to full, the tour lengths are added to the service
   cost, and events are logged.

The ordering matters: a policy reacting to a rate change at time ``t`` must
see the new rates before deciding whether to dispatch at ``t`` (this is how
the paper's greedy baseline avoids mid-slot deaths when slot boundaries
align with its decision epochs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import ChargingScheduling
from repro.errors import SensorDeathError, SimulationError
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.sim.events import ChargeEvent, DeathEvent, DispatchEvent
from repro.sim.metrics import Metrics
from repro.sim.policies import ChargingPolicy, SimulationView
from repro.sim.state import EnergyState
from repro.sim.workload import Workload

__all__ = ["Simulator", "SimulationResult", "SimulationHooks", "simulate"]

#: Two event times closer than this are treated as coincident.
_TIME_TOL = 1e-9

log = get_logger(__name__)


class SimulationHooks:
    """Opt-in observer protocol for the engine's event loop.

    Subclass and override the callbacks you care about; the defaults are
    no-ops. The engine calls each hook *after* it has applied the
    corresponding state change, with live (non-copied) arrays — hooks must
    treat them as read-only. This is the attachment point for
    :mod:`repro.check`'s runtime invariant checker; keeping it an abstract
    observer (rather than importing the checker here) preserves the
    layering: ``sim`` knows nothing about ``check``.

    A hook that raises aborts the run — that is intentional, so an
    invariant checker can fail fast at the exact event that violated it.
    """

    def on_start(self, network: SensorNetwork, horizon: float,
                 energy: np.ndarray) -> None:
        """Called once before the event loop, with the initial energies."""

    def on_advance(self, t_from: float, t_to: float, rates: np.ndarray,
                   energy: np.ndarray) -> None:
        """Called after each exact drain over ``[t_from, t_to)``.

        ``energy`` is the engine's post-drain state (clamped at zero for
        any sensor that died in the interval).
        """

    def on_death(self, sensor: int, time: float) -> None:
        """Called for each death event recorded during a drain."""

    def on_dispatch(self, time: float, scheduling: ChargingScheduling,
                    energy: np.ndarray) -> None:
        """Called after a scheduling executed (post-charge energies)."""

    def on_finish(self, result: SimulationResult) -> None:
        """Called once with the final result before :meth:`Simulator.run` returns."""


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run.

    Parameters
    ----------
    metrics:
        Aggregate metrics and the full event log.
    final_energy:
        ``(n,)`` energies at the horizon.
    horizon:
        The simulated period ``T``.
    """

    metrics: Metrics
    final_energy: np.ndarray
    horizon: float


class Simulator:
    """Reusable engine binding a network to the event loop.

    Parameters
    ----------
    network:
        The WSN instance (geometry, batteries, distance matrix).
    strict:
        If true, the first sensor death raises
        :class:`~repro.errors.SensorDeathError`; otherwise deaths are
        recorded in the metrics and the run continues (dead sensors revive
        when charged — experiments report the death count).
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation` context.
        Each :meth:`run` executes under a ``simulate`` span, every loop
        iteration counts toward ``sim.events``, and each executed
        scheduling records a ``dispatch`` span (with cost / sensor /
        charger attributes). ``None`` (the default) is a strict no-op.
    hooks:
        Optional :class:`SimulationHooks` observer receiving a callback at
        every state transition (start, drain, death, dispatch, finish).
        ``None`` (the default) adds zero overhead to the loop.
    """

    def __init__(self, network: SensorNetwork, *, strict: bool = False,
                 instrumentation: Instrumentation | None = None,
                 hooks: SimulationHooks | None = None) -> None:
        self.network = network
        self.strict = strict
        self._obs = ensure(instrumentation)
        self._hooks = hooks

    def run(self, policy: ChargingPolicy, workload: Workload,
            horizon: float) -> SimulationResult:
        """Simulate ``policy`` against ``workload`` over ``[0, horizon]``.

        Returns
        -------
        SimulationResult

        Raises
        ------
        SensorDeathError
            In strict mode, on the first death.
        SimulationError
            If the policy requests a dispatch time in the past.
        """
        if horizon <= 0 or not math.isfinite(horizon):
            raise SimulationError(f"horizon must be positive and finite, got {horizon}")
        net = self.network
        state = EnergyState(net.batteries)
        metrics = Metrics(q=net.q)
        o = self._obs
        hooks = self._hooks
        with o.span("simulate", n=net.n, horizon=float(horizon)) as sp:
            if hooks is not None:
                hooks.on_start(net, float(horizon), state.energy)
            policy.reset(net, horizon)

            slot_len = workload.slot_duration
            slot = 0
            rates = np.asarray(workload.rates_at(0), dtype=np.float64)
            if rates.shape != (net.n,):
                raise SimulationError(
                    f"workload produced rates of shape {rates.shape}, expected ({net.n},)")

            # Initial observation so online policies can plan from t=0 state.
            policy.observe(self._view(0.0, state, rates))

            t = 0.0
            guard = 0
            max_iterations = 10_000_000
            while t < horizon - _TIME_TOL:
                guard += 1
                o.incr("sim.events")
                if guard > max_iterations:
                    raise SimulationError("simulation exceeded iteration guard "
                                          "(policy likely returning non-advancing times)")
                t_boundary = (slot + 1) * slot_len if math.isfinite(slot_len) else math.inf
                t_policy_raw = policy.next_dispatch_time(t)
                t_policy = math.inf if t_policy_raw is None else float(t_policy_raw)
                if t_policy < t - _TIME_TOL:
                    raise SimulationError(
                        f"policy requested dispatch at {t_policy} < current time {t}")
                t_next = min(horizon, t_boundary, max(t_policy, t))

                # ---- drain exactly over [t, t_next)
                deaths = state.drain(rates, t_next - t, t)
                if hooks is not None:
                    hooks.on_advance(t, t_next, rates, state.energy)
                for sensor, when in deaths:
                    metrics.deaths.append(DeathEvent(time=when, sensor=sensor))
                    log.debug("sensor %d died at t=%.6g", sensor, when)
                    if hooks is not None:
                        hooks.on_death(sensor, when)
                    if self.strict:
                        raise SensorDeathError(
                            f"sensor {sensor} died at t={when:.6g}", sensor_id=sensor,
                            time=when)
                t = t_next
                if t >= horizon - _TIME_TOL:
                    break

                # ---- slot boundary first: rates change, policy observes
                if abs(t - t_boundary) <= _TIME_TOL:
                    slot += 1
                    rates = np.asarray(workload.rates_at(slot), dtype=np.float64)
                    policy.observe(self._view(t, state, rates))
                    # The observation may have changed the next dispatch time;
                    # loop around rather than acting on a stale t_policy.
                    if not (abs(t - t_policy) <= _TIME_TOL):
                        continue
                    t_policy = policy.next_dispatch_time(t) or math.inf

                # ---- policy dispatch
                if abs(t - t_policy) <= _TIME_TOL:
                    sched = policy.dispatch(self._view(t, state, rates))
                    if sched is not None:
                        self._execute(sched, t, state, metrics)
            sp.set(events=guard, dispatches=len(metrics.dispatches),
                   deaths=len(metrics.deaths))
        result = SimulationResult(metrics=metrics,
                                  final_energy=state.energy.copy(), horizon=horizon)
        if hooks is not None:
            hooks.on_finish(result)
        return result

    # ------------------------------------------------------------------ internals
    def _view(self, t: float, state: EnergyState, rates: np.ndarray) -> SimulationView:
        return SimulationView(time=t, energy=state.energy.copy(),
                              batteries=self.network.batteries,
                              observed_rates=rates.copy())

    def _execute(self, sched: ChargingScheduling, t: float,
                 state: EnergyState, metrics: Metrics) -> None:
        net = self.network
        d = net.dist
        with self._obs.span("dispatch", time=float(t)) as sp:
            total = 0.0
            active = 0
            for l, tour in enumerate(sched.tours):
                c = tour.cost(d)
                total += c
                if not tour.is_empty:
                    active += 1
                if l < metrics.per_charger.shape[0]:
                    metrics.per_charger[l] += c
            sensors = sorted(sched.charged_sensors)
            for s in sensors:
                if s >= net.n:
                    raise SimulationError(f"scheduling charges non-sensor node {s}")
                before = float(state.energy[s])
                metrics.charges.append(ChargeEvent(
                    time=t, sensor=s, energy_before=before))
                metrics.energy_delivered += float(net.batteries[s]) - before
            state.charge_full(sensors)
            metrics.service_cost += total
            metrics.dispatches.append(DispatchEvent(
                time=t, cost=total, n_sensors=len(sensors), n_active_chargers=active))
            sp.set(cost=total, sensors=len(sensors), chargers=active)
        if self._hooks is not None:
            self._hooks.on_dispatch(t, sched, state.energy)


def simulate(network: SensorNetwork, policy: ChargingPolicy, workload: Workload,
             horizon: float, *, strict: bool = False,
             instrumentation: Instrumentation | None = None,
             hooks: SimulationHooks | None = None) -> SimulationResult:
    """One-call wrapper: ``Simulator(network, ...).run(...)``."""
    return Simulator(network, strict=strict, instrumentation=instrumentation,
                     hooks=hooks).run(policy, workload, horizon)
