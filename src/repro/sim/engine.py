"""The discrete-event simulation loop.

The engine owns three things: the clock, the exact energy integral
(piecewise-constant rates integrate in closed form — no per-tick error) and
one :class:`~repro.sim.queue.EventQueue`. Everything that *happens* —
slot boundaries, policy dispatches, charger breakdowns, sensor churn,
charging requests — is scheduled by an :class:`~repro.sim.sources.EventSource`;
the loop pops the next coincident batch, drains energy up to its instant,
and fires the batch in priority order:

1. **Horizon end** — the run is over; coincident events never fire.
2. **Slot boundary** — the workload's true rates change; the policy's
   ``observe`` hook fires with fresh monitored data.
3. **Charger failure/repair** — fleet availability flips.
4. **Sensor churn** — membership flips (offline sensors neither drain,
   die, nor accept charge).
5. **Charging request** — request bookkeeping, policy notification.
6. **Policy dispatch** — if the policy (re-)confirms it wants control now,
   it may return a charging scheduling, which is executed instantaneously:
   tours of unavailable chargers degrade to stay-at-home, every *online*
   visited sensor is restored to full, tour lengths accrue to the service
   cost, and events are logged.

The ordering matters: a policy reacting to any change at time ``t`` must
see that change applied before deciding whether to dispatch at ``t`` (this
is how the paper's greedy baseline avoids mid-slot deaths when slot
boundaries align with its decision epochs). Static runs — no extra sources,
everyone online — reproduce the legacy slotted loop bit-for-bit;
``repro check sim`` proves it differentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.schedule import ChargingScheduling
from repro.errors import SensorDeathError, SimulationError
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.sim.events import (
    ChargeEvent,
    ChurnEvent,
    DeathEvent,
    DispatchEvent,
    FleetEvent,
    RequestEvent,
)
from repro.sim.metrics import EventSpill, Metrics
from repro.sim.policies import ChargingPolicy, SimulationView
from repro.sim.queue import PRIORITY_HORIZON, EventQueue
from repro.sim.sources import EventSource, PolicyDispatchSource, SlotBoundarySource
from repro.sim.state import ChargerFleet, EnergyState
from repro.sim.workload import Workload
from repro.tsp.tour import Tour

__all__ = ["Simulator", "SimulationResult", "SimulationHooks", "SimRuntime", "simulate"]

log = get_logger(__name__)


class SimulationHooks:
    """Opt-in observer protocol for the engine's event loop.

    Subclass and override the callbacks you care about; the defaults are
    no-ops. The engine calls each hook *after* it has applied the
    corresponding state change, with live (non-copied) arrays — hooks must
    treat them as read-only. This is the attachment point for
    :mod:`repro.check`'s runtime invariant checker; keeping it an abstract
    observer (rather than importing the checker here) preserves the
    layering: ``sim`` knows nothing about ``check``.

    A hook that raises aborts the run — that is intentional, so an
    invariant checker can fail fast at the exact event that violated it.
    """

    def on_start(self, network: SensorNetwork, horizon: float,
                 energy: np.ndarray) -> None:
        """Called once before the event loop, with the initial energies."""

    def on_advance(self, t_from: float, t_to: float, rates: np.ndarray,
                   energy: np.ndarray) -> None:
        """Called after each exact drain over ``[t_from, t_to)``.

        ``rates`` are the *effective* rates of the interval (offline
        sensors zeroed); ``energy`` is the engine's post-drain state
        (clamped at zero for any sensor that died in the interval).
        """

    def on_death(self, sensor: int, time: float) -> None:
        """Called for each death event recorded during a drain."""

    def on_dispatch(self, time: float, scheduling: ChargingScheduling,
                    energy: np.ndarray) -> None:
        """Called after a scheduling executed (post-charge energies).

        ``scheduling`` is the *effective* one — tours of unavailable
        chargers already degraded to stay-at-home.
        """

    def on_fleet(self, charger: int, time: float, available: bool) -> None:
        """Called after a charger's availability flipped."""

    def on_churn(self, sensor: int, time: float, online: bool) -> None:
        """Called after a sensor's membership flipped."""

    def on_request(self, sensor: int, time: float) -> None:
        """Called after a charging-request arrival was recorded."""

    def on_finish(self, result: SimulationResult) -> None:
        """Called once with the final result before :meth:`Simulator.run` returns."""


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run.

    Parameters
    ----------
    metrics:
        Aggregate metrics and the full event log.
    final_energy:
        ``(n,)`` energies at the horizon.
    horizon:
        The simulated period ``T``.
    """

    metrics: Metrics
    final_energy: np.ndarray
    horizon: float


class SimRuntime:
    """Mutable per-run context handed to event sources.

    Sources use it to schedule events, flip fleet/membership state, read
    policy views and execute schedulings; the engine uses it to drive the
    loop. One instance lives for exactly one :meth:`Simulator.run`.
    """

    __slots__ = ("network", "state", "fleet", "metrics", "queue", "policy",
                 "workload", "horizon", "now", "rates", "strict", "_obs",
                 "_hooks", "_sim")

    def __init__(self, sim: "Simulator", policy: ChargingPolicy,
                 workload: Workload, horizon: float, metrics: Metrics) -> None:
        self._sim = sim
        self.network = sim.network
        self.state = EnergyState(sim.network.batteries)
        self.fleet = ChargerFleet(sim.network.q)
        self.metrics = metrics
        self.queue = EventQueue()
        self.policy = policy
        self.workload = workload
        self.horizon = float(horizon)
        self.now = 0.0
        self.rates = np.zeros(sim.network.n, dtype=np.float64)
        self.strict = sim.strict
        self._obs = sim._obs
        self._hooks = sim._hooks

    # ------------------------------------------------------------ scheduling
    def schedule(self, time: float, priority: int, kind: str, *,
                 data: object = None, source: EventSource | None = None):
        """Schedule an event; sources' one-stop entry point."""
        return self.queue.push(time, priority, kind, data=data, source=source)

    # ----------------------------------------------------------- observation
    def view(self) -> SimulationView:
        """Fresh policy-facing snapshot at the current instant."""
        state = self.state
        rates = state.effective_rates(self.rates)
        alive = state.online.copy() if state.any_offline else None
        return SimulationView(time=self.now, energy=state.energy.copy(),
                              batteries=self.network.batteries,
                              observed_rates=rates.copy(), alive=alive)

    def observe_policy(self) -> None:
        self.policy.observe(self.view())

    def set_rates(self, rates: np.ndarray) -> None:
        """Install the new true rates (slot boundary)."""
        r = np.asarray(rates, dtype=np.float64)
        if r.shape != (self.network.n,):
            raise SimulationError(
                f"workload produced rates of shape {r.shape}, expected ({self.network.n},)")
        self.rates = r

    # -------------------------------------------------------- state mutation
    def set_charger_available(self, charger: int, available: bool) -> None:
        """Flip one charger's availability and log the fleet event."""
        self.fleet.set_available(charger, available)
        self.metrics.fleet.append(FleetEvent(time=self.now, charger=int(charger),
                                             available=bool(available)))
        if not available:
            self.metrics.breakdowns += 1
        log.debug("charger %d %s at t=%.6g", charger,
                  "repaired" if available else "down", self.now)
        if self._hooks is not None:
            self._hooks.on_fleet(int(charger), self.now, bool(available))

    def set_sensor_online(self, sensor: int, online: bool) -> None:
        """Flip one sensor's membership and log the churn event."""
        self.state.set_online(sensor, online)
        self.metrics.churn.append(ChurnEvent(time=self.now, sensor=int(sensor),
                                             online=bool(online)))
        log.debug("sensor %d %s at t=%.6g", sensor,
                  "rejoined" if online else "left", self.now)
        if self._hooks is not None:
            self._hooks.on_churn(int(sensor), self.now, bool(online))

    def record_request(self, sensor: int) -> None:
        """Log a charging-request arrival for ``sensor``."""
        self.metrics.requests.append(RequestEvent(
            time=self.now, sensor=int(sensor),
            energy=float(self.state.energy[sensor])))
        if self._hooks is not None:
            self._hooks.on_request(int(sensor), self.now)

    def execute(self, sched: ChargingScheduling) -> None:
        """Execute a charging scheduling now (fleet-aware)."""
        self._sim._execute(sched, self)


class Simulator:
    """Reusable engine binding a network to the event loop.

    Parameters
    ----------
    network:
        The WSN instance (geometry, batteries, distance matrix).
    strict:
        If true, the first sensor death raises
        :class:`~repro.errors.SensorDeathError`; otherwise deaths are
        recorded in the metrics and the run continues (dead sensors revive
        when charged — experiments report the death count).
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation` context.
        Each :meth:`run` executes under a ``simulate`` span; every event
        batch counts toward ``sim.events``, each fired event toward
        ``sim.event.<kind>``, the live queue size feeds the
        ``sim.queue.depth`` series, and each executed scheduling records a
        ``dispatch`` span. ``None`` (the default) is a strict no-op.
    hooks:
        Optional :class:`SimulationHooks` observer receiving a callback at
        every state transition. ``None`` (the default) adds zero overhead.
    sources:
        Extra :class:`~repro.sim.sources.EventSource` instances (failures,
        churn, requests, ...). Slot boundaries and policy dispatches are
        always installed. Sources are re-primed per run, so reuse replays
        identical randomness.
    max_log_events:
        Bound each metrics event log to a ring of this many most-recent
        events (``None`` = keep everything). Counts stay exact either way.
    event_spill:
        Stream every event to this JSONL path (or an open
        :class:`~repro.sim.metrics.EventSpill`) as it is logged — the
        flat-memory companion to ``max_log_events``. A path is (re)opened
        per run and closed afterwards; an ``EventSpill`` object is left
        open for the caller.
    """

    def __init__(self, network: SensorNetwork, *, strict: bool = False,
                 instrumentation: Instrumentation | None = None,
                 hooks: SimulationHooks | None = None,
                 sources: tuple[EventSource, ...] = (),
                 max_log_events: int | None = None,
                 event_spill: EventSpill | str | Path | None = None) -> None:
        self.network = network
        self.strict = strict
        self._obs = ensure(instrumentation)
        self._hooks = hooks
        self._sources = tuple(sources)
        self._max_log_events = max_log_events
        self._event_spill = event_spill

    def run(self, policy: ChargingPolicy, workload: Workload,
            horizon: float) -> SimulationResult:
        """Simulate ``policy`` against ``workload`` over ``[0, horizon]``.

        Returns
        -------
        SimulationResult

        Raises
        ------
        SensorDeathError
            In strict mode, on the first death.
        SimulationError
            If the policy requests a dispatch time in the past.
        """
        if horizon <= 0 or not math.isfinite(horizon):
            raise SimulationError(f"horizon must be positive and finite, got {horizon}")
        spill, own_spill = self._open_spill()
        try:
            return self._run(policy, workload, float(horizon), spill)
        finally:
            if own_spill and spill is not None:
                spill.close()

    # ------------------------------------------------------------------ internals
    def _open_spill(self) -> tuple[EventSpill | None, bool]:
        if isinstance(self._event_spill, (str, Path)):
            return EventSpill(self._event_spill), True
        return self._event_spill, False

    def _run(self, policy: ChargingPolicy, workload: Workload, horizon: float,
             spill: EventSpill | None) -> SimulationResult:
        net = self.network
        metrics = Metrics.create(net.q, max_log_events=self._max_log_events,
                                 spill=spill)
        rt = SimRuntime(self, policy, workload, horizon, metrics)
        o = self._obs
        hooks = self._hooks
        with o.span("simulate", n=net.n, horizon=horizon) as sp:
            if hooks is not None:
                hooks.on_start(net, horizon, rt.state.energy)
            policy.reset(net, horizon)
            rt.set_rates(workload.rates_at(0))

            # Initial observation so online policies can plan from t=0 state.
            rt.observe_policy()

            rt.schedule(horizon, PRIORITY_HORIZON, "horizon")
            sources: tuple[EventSource, ...] = (
                SlotBoundarySource(workload), *self._sources,
                PolicyDispatchSource(policy))
            for src in sources:
                src.prime(rt)

            guard = 0
            max_iterations = 10_000_000
            while True:
                guard += 1
                o.incr("sim.events")
                if guard > max_iterations:
                    raise SimulationError("simulation exceeded iteration guard "
                                          "(policy likely returning non-advancing times)")
                for src in sources:
                    src.refresh(rt)
                o.observe("sim.queue.depth", float(len(rt.queue)))
                batch = rt.queue.pop_coincident()
                if not batch:
                    break  # unreachable while the horizon event is queued
                t_next = min(ev.time for ev in batch)

                # ---- drain exactly over [now, t_next)
                eff_rates = rt.state.effective_rates(rt.rates)
                deaths = rt.state.drain(eff_rates, t_next - rt.now, rt.now)
                if hooks is not None:
                    hooks.on_advance(rt.now, t_next, eff_rates, rt.state.energy)
                for sensor, when in deaths:
                    metrics.deaths.append(DeathEvent(time=when, sensor=sensor))
                    log.debug("sensor %d died at t=%.6g", sensor, when)
                    if hooks is not None:
                        hooks.on_death(sensor, when)
                    if self.strict:
                        raise SensorDeathError(
                            f"sensor {sensor} died at t={when:.6g}", sensor_id=sensor,
                            time=when)
                rt.now = t_next

                # ---- fire the batch in (priority, seq) order; the horizon
                # event outranks everything, so coincident events never fire.
                if batch[0].priority == PRIORITY_HORIZON:
                    break
                for ev in batch:
                    o.incr(f"sim.event.{ev.kind}")
                    if ev.source is not None:
                        ev.source.fire(rt, ev)
            sp.set(events=guard, dispatches=metrics.n_dispatches,
                   deaths=metrics.n_deaths)
        result = SimulationResult(metrics=metrics,
                                  final_energy=rt.state.energy.copy(),
                                  horizon=horizon)
        if hooks is not None:
            hooks.on_finish(result)
        return result

    def _effective_scheduling(self, sched: ChargingScheduling,
                              rt: SimRuntime) -> ChargingScheduling:
        """Degrade tours of unavailable chargers to stay-at-home."""
        if rt.fleet.all_available:
            return sched
        available = rt.fleet.available
        tours = tuple(
            tour if l >= rt.fleet.q or available[l] else Tour.empty(tour.depot)
            for l, tour in enumerate(sched.tours))
        return ChargingScheduling(time=sched.time, tours=tours)

    def _execute(self, sched: ChargingScheduling, rt: SimRuntime) -> None:
        net = self.network
        d = net.dist
        t = rt.now
        state = rt.state
        metrics = rt.metrics
        sched = self._effective_scheduling(sched, rt)
        with self._obs.span("dispatch", time=float(t)) as sp:
            total = 0.0
            active = 0
            for l, tour in enumerate(sched.tours):
                c = tour.cost(d)
                total += c
                if not tour.is_empty:
                    active += 1
                if l < metrics.per_charger.shape[0]:
                    metrics.per_charger[l] += c
            sensors = sorted(sched.charged_sensors)
            if state.any_offline:
                sensors = [s for s in sensors if s < net.n and state.is_online(s)]
            for s in sensors:
                if s >= net.n:
                    raise SimulationError(f"scheduling charges non-sensor node {s}")
                before = float(state.energy[s])
                metrics.charges.append(ChargeEvent(
                    time=t, sensor=s, energy_before=before))
                metrics.energy_delivered += float(net.batteries[s]) - before
            state.charge_full(sensors)
            metrics.service_cost += total
            metrics.dispatches.append(DispatchEvent(
                time=t, cost=total, n_sensors=len(sensors), n_active_chargers=active))
            sp.set(cost=total, sensors=len(sensors), chargers=active)
        if self._hooks is not None:
            self._hooks.on_dispatch(t, sched, state.energy)


def simulate(network: SensorNetwork, policy: ChargingPolicy, workload: Workload,
             horizon: float, *, strict: bool = False,
             instrumentation: Instrumentation | None = None,
             hooks: SimulationHooks | None = None,
             sources: tuple[EventSource, ...] = (),
             max_log_events: int | None = None,
             event_spill: EventSpill | str | Path | None = None) -> SimulationResult:
    """One-call wrapper: ``Simulator(network, ...).run(...)``."""
    return Simulator(network, strict=strict, instrumentation=instrumentation,
                     hooks=hooks, sources=sources, max_log_events=max_log_events,
                     event_spill=event_spill).run(policy, workload, horizon)
