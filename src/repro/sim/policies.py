"""Charging policies: how the base station decides when/whom to charge.

The simulator drives any object implementing :class:`ChargingPolicy`:

* ``reset`` — called once before the run.
* ``next_dispatch_time`` — the next instant the policy wants control
  (``None`` = never again). The engine guarantees a callback then.
* ``observe`` — called at every workload slot boundary, after the true
  rates changed, with a :class:`SimulationView`. This is where adaptive
  policies ingest "monitored" energy information (the paper's sensors
  report residual energy and measured consumption rate to the base
  station).
* ``dispatch`` — called when simulation time reaches
  ``next_dispatch_time``; returns the scheduling to execute now (or
  ``None`` for "nothing after all").

:class:`PlannedPolicy` wraps an offline :class:`~repro.core.schedule.SchedulePlan`
(Algorithm 3's output) as a policy, which lets the experiment harness run
offline and online algorithms through the identical pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.network.model import SensorNetwork

__all__ = ["SimulationView", "ChargingPolicy", "PlannedPolicy"]


@dataclass(frozen=True)
class SimulationView:
    """Read-only snapshot handed to policies.

    Parameters
    ----------
    time:
        Current simulation time.
    energy:
        ``(n,)`` current residual energies (sensors report these exactly).
    batteries:
        ``(n,)`` capacities.
    observed_rates:
        ``(n,)`` the rates sensors currently measure — the true rates of the
        *current* slot (monitoring is accurate within a slot; prediction
        across slots is the policy's problem). Offline sensors read 0.
    alive:
        ``(n,)`` boolean membership mask for churn scenarios, or ``None``
        (the static default) meaning everyone is online. Use
        :attr:`alive_mask` for a mask that is always materialised.
    """

    time: float
    energy: np.ndarray
    batteries: np.ndarray
    observed_rates: np.ndarray
    alive: np.ndarray | None = None

    @property
    def alive_mask(self) -> np.ndarray:
        """The membership mask, materialised (all-True when static)."""
        if self.alive is None:
            return np.ones(self.batteries.shape[0], dtype=bool)
        return self.alive

    @property
    def observed_cycles(self) -> np.ndarray:
        """Cycles implied by the observed rates, ``tau_i(t) = B_i / rho_i(t)``."""
        return np.divide(self.batteries, self.observed_rates,
                         out=np.full(self.batteries.shape, np.inf),
                         where=self.observed_rates > 0)

    @property
    def residual_lifetimes(self) -> np.ndarray:
        """Time each sensor survives at the observed rates."""
        return np.divide(self.energy, self.observed_rates,
                         out=np.full(self.energy.shape, np.inf),
                         where=self.observed_rates > 0)


@runtime_checkable
class ChargingPolicy(Protocol):
    """The protocol the simulator drives (see module docstring)."""

    def reset(self, network: SensorNetwork, horizon: float) -> None:
        ...

    def next_dispatch_time(self, now: float) -> float | None:
        ...

    def observe(self, view: SimulationView) -> None:
        ...

    def dispatch(self, view: SimulationView) -> ChargingScheduling | None:
        ...


class PlannedPolicy:
    """Execute a precomputed plan verbatim (offline algorithms).

    Parameters
    ----------
    plan:
        The offline plan; its schedulings are dispatched at exactly their
        recorded times, regardless of anything the simulation observes.
    """

    def __init__(self, plan: SchedulePlan) -> None:
        self._plan = plan
        self._cursor = 0

    @property
    def plan(self) -> SchedulePlan:
        return self._plan

    def reset(self, network: SensorNetwork, horizon: float) -> None:
        self._cursor = 0

    def next_dispatch_time(self, now: float) -> float | None:
        # Skip anything strictly in the past (robustness to re-entry).
        while (self._cursor < len(self._plan)
               and self._plan[self._cursor].time < now - 1e-12):
            self._cursor += 1
        if self._cursor >= len(self._plan):
            return None
        return self._plan[self._cursor].time

    def observe(self, view: SimulationView) -> None:  # offline: ignores it
        return None

    def dispatch(self, view: SimulationView) -> ChargingScheduling | None:
        if self._cursor >= len(self._plan):
            return None
        sched = self._plan[self._cursor]
        self._cursor += 1
        return sched
