"""Slotted network simulator.

Executes charging plans/policies against ground-truth energy trajectories:

* :mod:`~repro.sim.state` — per-sensor energy state with exact drain,
  death detection and full-charge operations.
* :mod:`~repro.sim.workload` — ground-truth consumption-rate processes:
  fixed rates, per-slot resampling (the paper's variable-cycle model where
  ``tau_i(t)`` is constant within each slot ``ΔT``), and a bursty "storm"
  process for the examples.
* :mod:`~repro.sim.policies` — the :class:`ChargingPolicy` protocol plus
  :class:`PlannedPolicy` (execute an offline plan verbatim).
* :mod:`~repro.sim.engine` — the event-driven loop: drain → slot boundary
  (rates update, policies observe) → dispatch (charge, accumulate cost).
* :mod:`~repro.sim.events` / :mod:`~repro.sim.metrics` — the event log and
  the aggregate metrics (service cost, dispatches, deaths, per-charger
  distance).

Timescale assumptions follow the paper exactly: charging is instantaneous
and to full capacity; travel time is ignored; only travel *distance* is
costed.
"""

from repro.sim.engine import SimulationResult, Simulator, simulate
from repro.sim.events import ChargeEvent, DeathEvent, DispatchEvent
from repro.sim.metrics import Metrics
from repro.sim.policies import ChargingPolicy, PlannedPolicy, SimulationView
from repro.sim.state import EnergyState
from repro.sim.workload import (
    FixedWorkload,
    ResampledWorkload,
    StormWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "ChargeEvent",
    "ChargingPolicy",
    "DeathEvent",
    "DispatchEvent",
    "EnergyState",
    "FixedWorkload",
    "Metrics",
    "PlannedPolicy",
    "ResampledWorkload",
    "SimulationResult",
    "SimulationView",
    "Simulator",
    "StormWorkload",
    "TraceWorkload",
    "Workload",
    "simulate",
]
