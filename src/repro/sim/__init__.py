"""Discrete-event network simulator.

Executes charging plans/policies against ground-truth energy trajectories:

* :mod:`~repro.sim.queue` — the heap-based :class:`EventQueue` with typed,
  totally-ordered events (time, priority class, sequence tie-break).
* :mod:`~repro.sim.sources` — pluggable event sources: slot boundaries,
  policy dispatch epochs, charger breakdown/repair, sensor churn and
  Poisson charging requests, bundled by :class:`ScenarioDynamics`.
* :mod:`~repro.sim.state` — per-sensor energy state with exact drain,
  death detection, full-charge operations and the churn membership mask,
  plus :class:`ChargerFleet` availability.
* :mod:`~repro.sim.workload` — ground-truth consumption-rate processes:
  fixed rates, per-slot resampling (the paper's variable-cycle model where
  ``tau_i(t)`` is constant within each slot ``ΔT``), and a bursty "storm"
  process for the examples.
* :mod:`~repro.sim.policies` — the :class:`ChargingPolicy` protocol plus
  :class:`PlannedPolicy` (execute an offline plan verbatim).
* :mod:`~repro.sim.engine` — the event loop: drain exactly to the next
  coincident batch, then fire it in priority order (slot boundary →
  failure/repair → churn → request → dispatch).
* :mod:`~repro.sim.events` / :mod:`~repro.sim.metrics` — the (optionally
  ring-bounded / JSONL-spilled) event log and the aggregate metrics
  (service cost, dispatches, deaths, per-charger distance).

Timescale assumptions follow the paper exactly: charging is instantaneous
and to full capacity; travel time is ignored; only travel *distance* is
costed. Static scenarios (no dynamic sources) reproduce the legacy slotted
loop bit-for-bit — ``repro check sim`` proves it.
"""

from repro.sim.engine import SimRuntime, SimulationHooks, SimulationResult, Simulator, simulate
from repro.sim.events import (
    ChargeEvent,
    ChurnEvent,
    DeathEvent,
    DispatchEvent,
    FleetEvent,
    RequestEvent,
)
from repro.sim.metrics import EventLog, EventSpill, Metrics
from repro.sim.policies import ChargingPolicy, PlannedPolicy, SimulationView
from repro.sim.queue import Event, EventQueue, coincident, time_tolerance
from repro.sim.sources import (
    ChargerFailureSource,
    ChurnSource,
    EventSource,
    PoissonRequestSource,
    PolicyDispatchSource,
    ScenarioDynamics,
    SlotBoundarySource,
)
from repro.sim.state import ChargerFleet, EnergyState
from repro.sim.workload import (
    FixedWorkload,
    ResampledWorkload,
    StormWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "ChargeEvent",
    "ChargerFailureSource",
    "ChargerFleet",
    "ChargingPolicy",
    "ChurnEvent",
    "ChurnSource",
    "DeathEvent",
    "DispatchEvent",
    "EnergyState",
    "Event",
    "EventLog",
    "EventQueue",
    "EventSource",
    "EventSpill",
    "FixedWorkload",
    "FleetEvent",
    "Metrics",
    "PlannedPolicy",
    "PoissonRequestSource",
    "PolicyDispatchSource",
    "RequestEvent",
    "ResampledWorkload",
    "ScenarioDynamics",
    "SimRuntime",
    "SimulationHooks",
    "SimulationResult",
    "SimulationView",
    "Simulator",
    "SlotBoundarySource",
    "StormWorkload",
    "TraceWorkload",
    "Workload",
    "coincident",
    "simulate",
    "time_tolerance",
]
