"""Ground-truth consumption-rate processes.

The paper's variable-cycle model (Section VII.A): the monitoring period is
partitioned into slots of length ``ΔT`` and each sensor's maximum charging
cycle ``tau_i(t)`` is constant within a slot. A workload supplies the *true*
rate vector for each slot; policies only ever see the rates through the
simulator's observation hook (i.e. what a sensor could monitor locally).

Implementations:

* :class:`FixedWorkload` — rates never change (Section V's setting).
* :class:`ResampledWorkload` — cycles redrawn i.i.d. from a
  :class:`~repro.network.cycles.CycleDistribution` every slot, the paper's
  experimental model for Figs. 3–6.
* :class:`StormWorkload` — a fixed baseline with windows during which a
  geographic region drains several times faster; drives the flood-detection
  example from the paper's introduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigError
from repro.network.cycles import CycleDistribution
from repro.network.model import SensorNetwork

__all__ = ["Workload", "FixedWorkload", "ResampledWorkload", "StormWorkload",
           "TraceWorkload"]


@runtime_checkable
class Workload(Protocol):
    """Supplies ground-truth rates per slot.

    Attributes
    ----------
    slot_duration:
        ``ΔT``; ``math.inf`` means rates never change.
    """

    slot_duration: float

    def rates_at(self, slot: int) -> np.ndarray:
        """True ``(n,)`` consumption-rate vector during slot ``slot``
        (slot ``s`` spans ``[s * ΔT, (s+1) * ΔT)``). Must be deterministic
        per slot index so replays and debugging reproduce exactly."""
        ...


@dataclass(frozen=True)
class FixedWorkload:
    """Rates constant for the whole period.

    Parameters
    ----------
    rates:
        ``(n,)`` consumption rates (typically ``network.rates``).
    """

    rates: np.ndarray
    slot_duration: float = math.inf

    def __post_init__(self) -> None:
        r = np.asarray(self.rates, dtype=np.float64)
        if r.ndim != 1 or np.any(r < 0):
            raise ConfigError("FixedWorkload: rates must be a non-negative 1-D array")
        object.__setattr__(self, "rates", r)

    @classmethod
    def from_network(cls, network: SensorNetwork) -> "FixedWorkload":
        """Fixed workload at the network's nominal rates."""
        return cls(rates=network.rates)

    def rates_at(self, slot: int) -> np.ndarray:
        return self.rates


@dataclass
class ResampledWorkload:
    """Cycles redrawn from a distribution at every slot boundary.

    Slot ``s``'s cycles are drawn from a child RNG stream keyed by ``s``
    (seed-sequence spawn), so any slot can be generated independently of
    the others and the whole process is reproducible from one seed.

    Parameters
    ----------
    network:
        Supplies geometry (base distances) and batteries.
    distribution:
        The cycle distribution resampled each slot.
    slot_duration:
        ``ΔT``. The paper's default is 10.
    seed:
        Master seed of the process.
    """

    network: SensorNetwork
    distribution: CycleDistribution
    slot_duration: float = 10.0
    seed: int = 0
    _cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not (self.slot_duration > 0):
            raise ConfigError(
                f"ResampledWorkload: slot_duration must be positive, got {self.slot_duration}")

    def cycles_at(self, slot: int) -> np.ndarray:
        """True cycles during ``slot`` (cached, deterministic per slot)."""
        if slot < 0:
            raise ConfigError(f"cycles_at: slot must be >= 0, got {slot}")
        if slot not in self._cache:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(slot,)))
            self._cache[slot] = self.distribution.sample(
                self.network.base_distances, rng)
        return self._cache[slot]

    def rates_at(self, slot: int) -> np.ndarray:
        return self.network.batteries / self.cycles_at(slot)


@dataclass
class StormWorkload:
    """A fixed baseline with storm windows that multiply drain rates in a
    disc around a storm centre.

    Parameters
    ----------
    network:
        Supplies nominal rates and geometry.
    storms:
        ``(t_start, t_end, cx, cy, radius, factor)`` tuples; while
        ``t in [t_start, t_end)`` every sensor within ``radius`` of
        ``(cx, cy)`` drains ``factor`` times faster.
    slot_duration:
        Granularity at which the simulator re-reads rates; storm edges are
        rounded to slot boundaries (choose ``slot_duration`` to divide the
        storm times for exact edges).
    """

    network: SensorNetwork
    storms: tuple[tuple[float, float, float, float, float, float], ...]
    slot_duration: float = 1.0

    def __post_init__(self) -> None:
        if not (self.slot_duration > 0):
            raise ConfigError("StormWorkload: slot_duration must be positive")
        for s in self.storms:
            if len(s) != 6:
                raise ConfigError(f"StormWorkload: bad storm tuple {s}")
            t0, t1, _, _, radius, factor = s
            if t1 <= t0 or radius <= 0 or factor <= 0:
                raise ConfigError(f"StormWorkload: invalid storm {s}")

    def rates_at(self, slot: int) -> np.ndarray:
        t = slot * self.slot_duration
        rates = self.network.rates.copy()
        coords = self.network.coordinates[: self.network.n]
        for t0, t1, cx, cy, radius, factor in self.storms:
            if t0 <= t < t1:
                d2 = (coords[:, 0] - cx) ** 2 + (coords[:, 1] - cy) ** 2
                rates[d2 <= radius * radius] *= factor
        return rates


@dataclass(frozen=True)
class TraceWorkload:
    """Replay a recorded rate trace.

    The operational workflow: record real (or exported) per-slot rates as a
    ``(n_slots, n)`` matrix and replay them against any policy — the same
    ground truth for every algorithm, byte-for-byte. Slots beyond the trace
    hold the last recorded rates (monitoring typically outlives the trace).

    Parameters
    ----------
    trace:
        ``(n_slots, n)`` non-negative rate matrix; row ``s`` is the truth
        during ``[s * ΔT, (s+1) * ΔT)``.
    slot_duration:
        ``ΔT`` of the recording.
    """

    trace: np.ndarray
    slot_duration: float = 10.0

    def __post_init__(self) -> None:
        t = np.asarray(self.trace, dtype=np.float64)
        if t.ndim != 2 or t.shape[0] == 0 or t.shape[1] == 0:
            raise ConfigError(
                f"TraceWorkload: need a (n_slots, n) matrix, got shape {t.shape}")
        if np.any(t < 0) or not np.all(np.isfinite(t)):
            raise ConfigError("TraceWorkload: rates must be finite and non-negative")
        if not (self.slot_duration > 0):
            raise ConfigError(
                f"TraceWorkload: slot_duration must be positive, got {self.slot_duration}")
        object.__setattr__(self, "trace", t)

    @property
    def n_slots(self) -> int:
        return self.trace.shape[0]

    def rates_at(self, slot: int) -> np.ndarray:
        if slot < 0:
            raise ConfigError(f"rates_at: slot must be >= 0, got {slot}")
        return self.trace[min(slot, self.n_slots - 1)]

    @classmethod
    def record(cls, workload: Workload, n_slots: int, n: int) -> "TraceWorkload":
        """Materialise the first ``n_slots`` of any workload into a trace
        (for archiving or cross-machine reproduction)."""
        if n_slots <= 0:
            raise ConfigError(f"record: n_slots must be positive, got {n_slots}")
        rows = np.empty((n_slots, n), dtype=np.float64)
        for s in range(n_slots):
            rows[s] = np.asarray(workload.rates_at(s), dtype=np.float64)
        duration = workload.slot_duration
        if not math.isfinite(duration):
            duration = 10.0  # fixed workloads: any slotting reproduces them
        return cls(trace=rows, slot_duration=duration)
