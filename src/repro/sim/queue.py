"""The discrete-event queue: typed, totally-ordered events.

Every future occurrence in a simulation — slot boundary, policy dispatch,
charger breakdown/repair, sensor churn, charging request, end of horizon —
is an :class:`Event` on one :class:`EventQueue`. Events are totally ordered
by ``(time, priority, seq)``:

* ``time`` — simulation time of the occurrence;
* ``priority`` — the *kind* rank, breaking ties between coincident events
  (see the ``PRIORITY_*`` constants: horizon end always wins, then slot
  boundaries, fleet failures/repairs, churn, requests, and policy
  dispatches last — a policy reacting to a change at time ``t`` must see
  that change applied before it decides);
* ``seq`` — insertion order, making ties within one kind deterministic.

Coincidence is decided with a **relative-or-absolute** tolerance
(:func:`time_tolerance`): two timestamps within ``1e-9 · max(1, |t|)`` are
the same instant. A plain absolute ``1e-9`` is below one float64 ulp once
``t ≥ 1e7`` (ulp(1e7) ≈ 1.9e-9), so long-horizon runs would mis-order
events that differ only by rounding; the relative form keeps the test
meaningful at any magnitude.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError

__all__ = [
    "Event",
    "EventQueue",
    "PRIORITY_HORIZON",
    "PRIORITY_SLOT",
    "PRIORITY_FAILURE",
    "PRIORITY_CHURN",
    "PRIORITY_REQUEST",
    "PRIORITY_DISPATCH",
    "time_tolerance",
    "coincident",
]

#: Relative coincidence tolerance (absolute below ``|t| = 1``).
_TIME_TOL = 1e-9

# Priority classes, processed low-to-high among coincident events. The
# horizon end outranks everything: events *at* the horizon never fire
# (the run is over). State changes (slot rates, fleet, membership) precede
# request bookkeeping, which precedes policy dispatches.
PRIORITY_HORIZON = 0
PRIORITY_SLOT = 1
PRIORITY_FAILURE = 2
PRIORITY_CHURN = 3
PRIORITY_REQUEST = 4
PRIORITY_DISPATCH = 5


def time_tolerance(t: float) -> float:
    """Coincidence tolerance at time ``t``: ``1e-9 · max(1, |t|)``.

    Relative above 1, absolute below — always a few ulp wide, never zero.
    """
    return _TIME_TOL * max(1.0, abs(t))


def coincident(a: float, b: float) -> bool:
    """True when ``a`` and ``b`` denote the same simulation instant."""
    return abs(a - b) <= time_tolerance(max(abs(a), abs(b)))


@dataclass(slots=True)
class Event:
    """One scheduled occurrence.

    Parameters
    ----------
    time:
        When it fires.
    priority:
        Kind rank (one of the ``PRIORITY_*`` constants) breaking ties
        between coincident events.
    kind:
        Short label (``"slot"``, ``"dispatch"``, ``"failure"``, ...) used
        for observability counters and logs.
    seq:
        Queue-assigned insertion index; the final tie-break.
    data:
        Opaque payload interpreted by the source that scheduled it.
    source:
        The :class:`~repro.sim.sources.EventSource` whose ``fire`` handles
        it (``None`` for engine-internal events such as the horizon end).
    """

    time: float
    priority: int
    kind: str
    seq: int = -1
    data: Any = None
    source: Any = None
    cancelled: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventQueue:
    """Binary-heap priority queue over ``(time, priority, seq)``.

    Cancellation is lazy: :meth:`cancel` marks the event and the heap
    discards it on pop, so rescheduling (the policy-dispatch source does
    this constantly) is O(log n) with no heap surgery.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (not cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, priority: int, kind: str, *,
             data: Any = None, source: Any = None) -> Event:
        """Schedule an event; returns the handle (usable with :meth:`cancel`)."""
        t = float(time)
        if not math.isfinite(t):
            raise SimulationError(f"event time must be finite, got {time} ({kind})")
        ev = Event(time=t, priority=int(priority), kind=kind, seq=self._seq,
                   data=data, source=source)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (ev.time, ev.priority, ev.seq, ev))
        return ev

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it is silently dropped when reached."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek(self) -> Event | None:
        """The earliest live event without removing it (``None`` if empty)."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][3] if heap else None

    def pop(self) -> Event | None:
        """Remove and return the earliest live event (``None`` if empty)."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def pop_coincident(self) -> list[Event]:
        """Pop the earliest event plus everything coincident with it.

        The batch shares one simulation instant — the *anchor* time of its
        earliest member — and is returned sorted by ``(priority, seq)``,
        i.e. the documented processing order. Returns ``[]`` when empty.
        """
        first = self.pop()
        if first is None:
            return []
        batch = [first]
        limit = first.time + time_tolerance(first.time)
        while True:
            nxt = self.peek()
            if nxt is None or nxt.time > limit:
                break
            batch.append(self.pop())
        batch.sort(key=lambda e: (e.priority, e.seq))
        return batch
