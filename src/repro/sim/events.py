"""Event records emitted by the simulator.

The engine appends one :class:`DispatchEvent` per executed charging
scheduling (with per-charger breakdown), one :class:`ChargeEvent` per sensor
charge, and one :class:`DeathEvent` per energy expiration. Dynamic-scenario
sources add :class:`FleetEvent` (charger breakdown/repair),
:class:`ChurnEvent` (sensor leave/rejoin) and :class:`RequestEvent`
(charging-request arrival). Metrics are aggregations over this log; tests
assert against it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DispatchEvent", "ChargeEvent", "DeathEvent", "FleetEvent",
           "ChurnEvent", "RequestEvent"]


@dataclass(frozen=True, slots=True)
class DispatchEvent:
    """The q chargers executed one charging scheduling.

    Parameters
    ----------
    time:
        Dispatch time.
    cost:
        Total tour length of the scheduling.
    n_sensors:
        Number of sensors charged.
    n_active_chargers:
        Chargers that actually left their depot (non-empty tours).
    """

    time: float
    cost: float
    n_sensors: int
    n_active_chargers: int


@dataclass(frozen=True, slots=True)
class ChargeEvent:
    """One sensor restored to full capacity.

    Parameters
    ----------
    time:
        When it happened.
    sensor:
        Sensor id.
    energy_before:
        Energy level immediately before the charge (diagnoses how close a
        policy cuts it — 0 means a knife-edge arrival).
    """

    time: float
    sensor: int
    energy_before: float


@dataclass(frozen=True, slots=True)
class DeathEvent:
    """A sensor ran out of energy.

    Parameters
    ----------
    time:
        Exact crossing time (interpolated within the drain interval).
    sensor:
        Sensor id.
    """

    time: float
    sensor: int


@dataclass(frozen=True, slots=True)
class FleetEvent:
    """A mobile charger broke down or came back from repair.

    Parameters
    ----------
    time:
        When the availability flipped.
    charger:
        Charger index ``0..q-1``.
    available:
        New availability: ``False`` = breakdown, ``True`` = repaired.
    """

    time: float
    charger: int
    available: bool


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """A sensor left the network or rejoined it.

    Parameters
    ----------
    time:
        When the membership flipped.
    sensor:
        Sensor id.
    online:
        New membership: ``False`` = left (stops draining, is neither
        charged nor counted), ``True`` = rejoined.
    """

    time: float
    sensor: int
    online: bool


@dataclass(frozen=True, slots=True)
class RequestEvent:
    """A sensor issued an explicit charging request.

    Parameters
    ----------
    time:
        Arrival time (Poisson process under
        :class:`~repro.sim.sources.PoissonRequestSource`).
    sensor:
        The requesting sensor.
    energy:
        Residual energy at request time.
    """

    time: float
    sensor: int
    energy: float
