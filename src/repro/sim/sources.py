"""Pluggable event sources: everything that schedules simulation events.

The engine itself owns nothing but the queue, the clock and the energy
integral. Every occurrence is scheduled by an :class:`EventSource`:

* :class:`SlotBoundarySource` — the workload's rate changes (built in);
* :class:`PolicyDispatchSource` — the policy's requested control instants
  (built in);
* :class:`ChargerFailureSource` — charger breakdown/repair with an
  exponential time-to-failure and a fixed mean-time-to-repair, after the
  digital-twin station pattern (``failure_rate`` + ``mttr``);
* :class:`ChurnSource` — sensors leaving the network and rejoining after a
  fixed downtime;
* :class:`PoissonRequestSource` — Poisson-arriving per-sensor charging
  requests (the hook for deadline-driven policies).

Sources interact with the run through the engine's
:class:`~repro.sim.engine.SimRuntime` — schedule events, flip fleet or
membership state, read views. ``prime`` must fully re-initialise the
source (including its RNG streams), so one source instance reused across
runs replays identically: common random numbers across algorithms come for
free. Randomness is seeded per-source from ``numpy`` spawn keys, so adding
or removing one source never perturbs another's stream.

:class:`ScenarioDynamics` bundles the knobs (rates, MTTR, downtime, seed)
as one serialisable record shared by the CLI, the serve protocol and the
experiment grid.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.sim.queue import (
    PRIORITY_CHURN,
    PRIORITY_DISPATCH,
    PRIORITY_FAILURE,
    PRIORITY_REQUEST,
    PRIORITY_SLOT,
    Event,
    time_tolerance,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sim.engine import SimRuntime

__all__ = [
    "EventSource",
    "SlotBoundarySource",
    "PolicyDispatchSource",
    "ChargerFailureSource",
    "ChurnSource",
    "PoissonRequestSource",
    "ScenarioDynamics",
]


class EventSource:
    """Base class for event sources; all callbacks default to no-ops.

    Lifecycle per run: ``prime`` once at ``t = 0`` (schedule initial
    events, reset all internal state), ``refresh`` at the top of every
    engine iteration (reconcile with mutable collaborators — only the
    dispatch source needs this), ``fire`` for each of this source's events
    when its instant is reached.
    """

    #: Label stamped on scheduled events (observability counters).
    kind = "event"

    def prime(self, rt: "SimRuntime") -> None:
        """Reset internal state and schedule initial events."""

    def refresh(self, rt: "SimRuntime") -> None:
        """Reconcile scheduled events with external state (pre-iteration)."""

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        """Handle one of this source's events at ``rt.now``."""


class SlotBoundarySource(EventSource):
    """Fires at every workload slot boundary ``k · ΔT``.

    Boundary ``k`` updates the true rates to slot ``k``'s and lets the
    policy observe — exactly the slotted model's semantics. Times are
    computed as ``(slot + 1) * slot_duration`` (one multiply, not an
    accumulated sum) to match the legacy loop bit-for-bit.
    """

    kind = "slot"

    def __init__(self, workload: Any) -> None:
        self.workload = workload
        self._slot = 0

    @property
    def slot(self) -> int:
        """Current slot index."""
        return self._slot

    def prime(self, rt: "SimRuntime") -> None:
        self._slot = 0
        slot_len = self.workload.slot_duration
        if math.isfinite(slot_len):
            rt.schedule(slot_len, PRIORITY_SLOT, self.kind, source=self)

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        self._slot += 1
        rt.set_rates(self.workload.rates_at(self._slot))
        rt.observe_policy()
        next_t = (self._slot + 1) * self.workload.slot_duration
        if next_t < rt.horizon + time_tolerance(rt.horizon):
            rt.schedule(next_t, PRIORITY_SLOT, self.kind, source=self)


class PolicyDispatchSource(EventSource):
    """Keeps exactly one pending event at the policy's requested instant.

    ``refresh`` re-queries :meth:`ChargingPolicy.next_dispatch_time` every
    engine iteration and reschedules the single pending event when the
    answer moved (policies may legally change their mind after every
    observation). ``fire`` re-verifies the request before dispatching:
    if the policy no longer wants control *now* — e.g. a coincident slot
    boundary was processed first and the observation pushed the epoch out —
    the event lapses and the new instant is scheduled instead. All
    shipped policies' ``next_dispatch_time`` are idempotent queries, which
    this design requires.
    """

    kind = "dispatch"

    def __init__(self, policy: Any) -> None:
        self.policy = policy
        self._pending: Event | None = None

    def prime(self, rt: "SimRuntime") -> None:
        self._pending = None
        self.refresh(rt)

    def refresh(self, rt: "SimRuntime") -> None:
        t_req = self._requested(rt)
        if t_req is None:
            if self._pending is not None:
                rt.queue.cancel(self._pending)
                self._pending = None
            return
        t_sched = max(t_req, rt.now)
        if self._pending is not None:
            if self._pending.time == t_sched:
                return
            rt.queue.cancel(self._pending)
        self._pending = rt.schedule(t_sched, PRIORITY_DISPATCH, self.kind, source=self)

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        self._pending = None
        t_req = self._requested(rt)
        if t_req is None:
            return
        if abs(t_req - rt.now) <= time_tolerance(rt.now):
            sched = self.policy.dispatch(rt.view())
            if sched is not None:
                rt.execute(sched)
        else:
            self._pending = rt.schedule(max(t_req, rt.now), PRIORITY_DISPATCH,
                                        self.kind, source=self)

    def _requested(self, rt: "SimRuntime") -> float | None:
        t_req = self.policy.next_dispatch_time(rt.now)
        if t_req is None:
            return None
        t_req = float(t_req)
        if t_req < rt.now - time_tolerance(rt.now):
            raise SimulationError(
                f"policy requested dispatch at {t_req} < current time {rt.now}")
        return t_req


class ChargerFailureSource(EventSource):
    """Charger breakdown/repair: exponential time-to-failure + fixed MTTR.

    Parameters
    ----------
    rate:
        Breakdowns per unit time per charger while it is up (``lambda`` of
        the exponential time-to-failure).
    mttr:
        Repair duration; the charger is unavailable for exactly this long.
    seed:
        Base seed; charger ``l`` draws from the spawn-key ``(1, l)`` child
        stream so fleets of different sizes share prefixes.
    """

    kind = "failure"

    def __init__(self, rate: float, mttr: float, seed: int = 0) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise SimulationError(f"failure rate must be positive and finite, got {rate}")
        if mttr <= 0 or not math.isfinite(mttr):
            raise SimulationError(f"MTTR must be positive and finite, got {mttr}")
        self.rate = float(rate)
        self.mttr = float(mttr)
        self.seed = int(seed)
        self._rngs: list[np.random.Generator] = []

    def prime(self, rt: "SimRuntime") -> None:
        q = rt.fleet.q
        self._rngs = [
            np.random.default_rng(np.random.SeedSequence(entropy=self.seed,
                                                         spawn_key=(1, l)))
            for l in range(q)
        ]
        for l in range(q):
            self._schedule_failure(rt, l, 0.0)

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        charger, up = event.data
        if up:
            rt.set_charger_available(charger, True)
            self._schedule_failure(rt, charger, rt.now)
        else:
            rt.set_charger_available(charger, False)
            rt.schedule(rt.now + self.mttr, PRIORITY_FAILURE, self.kind,
                        data=(charger, True), source=self)

    def _schedule_failure(self, rt: "SimRuntime", charger: int, now: float) -> None:
        gap = self._rngs[charger].exponential(1.0 / self.rate)
        t = now + gap
        if t < rt.horizon:
            rt.schedule(t, PRIORITY_FAILURE, self.kind,
                        data=(charger, False), source=self)


class ChurnSource(EventSource):
    """Sensor membership churn: leave events with a fixed rejoin downtime.

    Parameters
    ----------
    rate:
        Network-wide leave events per unit time (exponential gaps).
    downtime:
        How long a departed sensor stays offline before rejoining.
    seed:
        Spawn-key ``(2,)`` child stream.

    A leave picks uniformly among currently-online sensors (skipped when
    none are); the victim's energy freezes while offline and resumes
    draining on rejoin.
    """

    kind = "churn"

    def __init__(self, rate: float, downtime: float, seed: int = 0) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise SimulationError(f"churn rate must be positive and finite, got {rate}")
        if downtime <= 0 or not math.isfinite(downtime):
            raise SimulationError(f"churn downtime must be positive and finite, got {downtime}")
        self.rate = float(rate)
        self.downtime = float(downtime)
        self.seed = int(seed)
        self._rng: np.random.Generator | None = None

    def prime(self, rt: "SimRuntime") -> None:
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(2,)))
        self._schedule_leave(rt, 0.0)

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        action, sensor = event.data
        if action == "rejoin":
            rt.set_sensor_online(sensor, True)
            return
        online = rt.state.online_sensors()
        if online.size:
            victim = int(online[self._rng.integers(online.size)])
            rt.set_sensor_online(victim, False)
            rt.schedule(rt.now + self.downtime, PRIORITY_CHURN, self.kind,
                        data=("rejoin", victim), source=self)
        self._schedule_leave(rt, rt.now)

    def _schedule_leave(self, rt: "SimRuntime", now: float) -> None:
        t = now + self._rng.exponential(1.0 / self.rate)
        if t < rt.horizon:
            rt.schedule(t, PRIORITY_CHURN, self.kind,
                        data=("leave", None), source=self)


class PoissonRequestSource(EventSource):
    """Poisson-arriving per-sensor charging requests.

    Parameters
    ----------
    rate:
        Request arrivals per unit time, network-wide.
    seed:
        Spawn-key ``(3,)`` child stream.

    Each arrival picks a uniformly-random online sensor, records a
    :class:`~repro.sim.events.RequestEvent`, and — if the policy exposes an
    ``on_request(view, sensor)`` method — notifies it before any coincident
    dispatch fires (requests rank ahead of dispatches in the priority
    order). Plan-following policies simply ignore requests.
    """

    kind = "request"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise SimulationError(f"request rate must be positive and finite, got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng: np.random.Generator | None = None

    def prime(self, rt: "SimRuntime") -> None:
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(3,)))
        self._schedule_arrival(rt, 0.0)

    def fire(self, rt: "SimRuntime", event: Event) -> None:
        online = rt.state.online_sensors()
        if online.size:
            sensor = int(online[self._rng.integers(online.size)])
            rt.record_request(sensor)
            on_request = getattr(rt.policy, "on_request", None)
            if on_request is not None:
                on_request(rt.view(), sensor)
        self._schedule_arrival(rt, rt.now)

    def _schedule_arrival(self, rt: "SimRuntime", now: float) -> None:
        t = now + self._rng.exponential(1.0 / self.rate)
        if t < rt.horizon:
            rt.schedule(t, PRIORITY_REQUEST, self.kind, source=self)


@dataclass(frozen=True)
class ScenarioDynamics:
    """Serialisable bundle of dynamic-scenario knobs.

    All rates default to 0 (= source disabled); :meth:`build_sources`
    returns only the enabled sources. One record is shared verbatim by the
    CLI flags, the serve protocol's ``simulate`` request and
    :class:`~repro.experiments.config.ExperimentConfig`.
    """

    failure_rate: float = 0.0
    failure_mttr: float = 0.0
    churn_rate: float = 0.0
    churn_downtime: float = 0.0
    request_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("failure_rate", "failure_mttr", "churn_rate",
                     "churn_downtime", "request_rate"):
            v = getattr(self, name)
            if v < 0 or not math.isfinite(v):
                raise SimulationError(f"{name} must be finite and >= 0, got {v}")
        if self.failure_rate > 0 and self.failure_mttr <= 0:
            raise SimulationError("failure_rate > 0 requires failure_mttr > 0")
        if self.churn_rate > 0 and self.churn_downtime <= 0:
            raise SimulationError("churn_rate > 0 requires churn_downtime > 0")

    @property
    def active(self) -> bool:
        """True when at least one source is enabled."""
        return self.failure_rate > 0 or self.churn_rate > 0 or self.request_rate > 0

    def with_seed(self, seed: int) -> "ScenarioDynamics":
        return dataclasses.replace(self, seed=int(seed))

    def build_sources(self) -> tuple[EventSource, ...]:
        """Instantiate the enabled sources (fresh, unprimed)."""
        sources: list[EventSource] = []
        if self.failure_rate > 0:
            sources.append(ChargerFailureSource(self.failure_rate, self.failure_mttr,
                                                seed=self.seed))
        if self.churn_rate > 0:
            sources.append(ChurnSource(self.churn_rate, self.churn_downtime,
                                       seed=self.seed))
        if self.request_rate > 0:
            sources.append(PoissonRequestSource(self.request_rate, seed=self.seed))
        return tuple(sources)

    def to_dict(self) -> dict[str, Any]:
        return {
            "failure_rate": self.failure_rate, "failure_mttr": self.failure_mttr,
            "churn_rate": self.churn_rate, "churn_downtime": self.churn_downtime,
            "request_rate": self.request_rate, "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioDynamics":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(f"unknown dynamics keys: {sorted(unknown)}")
        return cls(**{k: (int(v) if k == "seed" else float(v))
                      for k, v in data.items()})
