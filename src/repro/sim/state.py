"""Ground-truth per-sensor energy state."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["EnergyState"]

#: Sensors whose energy reaches at least ``-_ABS_TOL * battery`` are treated
#: as alive: "the battery hits zero exactly as the charger arrives" is a
#: legal knife-edge in the paper's model (gaps may equal tau_i exactly).
_REL_TOL = 1e-6


class EnergyState:
    """Mutable energy vector with drain / charge / death bookkeeping.

    Parameters
    ----------
    batteries:
        ``(n,)`` battery capacities; sensors start full.

    Notes
    -----
    Dead sensors keep draining toward (clamped) zero and *can* be revived by
    a later charge — the simulator records the death event either way, and
    strict callers turn any death into an error. This keeps long experiment
    sweeps running while still reporting every violation.
    """

    __slots__ = ("_batteries", "_energy", "_ever_died", "_currently_dead",
                 "_death_times")

    def __init__(self, batteries: np.ndarray) -> None:
        b = np.asarray(batteries, dtype=np.float64)
        if b.ndim != 1 or b.size == 0:
            raise SimulationError(f"EnergyState: need (n,) batteries, got shape {b.shape}")
        if np.any(b <= 0):
            raise SimulationError("EnergyState: batteries must be positive")
        self._batteries = b.copy()
        self._energy = b.copy()
        self._ever_died = np.zeros(b.shape[0], dtype=bool)
        # Dead *now* (cleared by a charge); distinct from the historical
        # ever_died so a revived sensor's second death is reported again.
        self._currently_dead = np.zeros(b.shape[0], dtype=bool)
        self._death_times: list[tuple[int, float]] = []

    # -------------------------------------------------------------- accessors
    @property
    def n(self) -> int:
        return self._batteries.shape[0]

    @property
    def batteries(self) -> np.ndarray:
        """Read-only battery capacities."""
        v = self._batteries.view()
        v.setflags(write=False)
        return v

    @property
    def energy(self) -> np.ndarray:
        """Read-only current energy levels (clamped at 0)."""
        v = self._energy.view()
        v.setflags(write=False)
        return v

    @property
    def fraction(self) -> np.ndarray:
        """Energy as a fraction of capacity."""
        return self._energy / self._batteries

    def residual_lifetimes(self, rates: np.ndarray) -> np.ndarray:
        """``(n,)`` time each sensor survives at the given drain rates."""
        r = np.asarray(rates, dtype=np.float64)
        return np.divide(self._energy, r, out=np.full(self.n, np.inf), where=r > 0)

    @property
    def deaths(self) -> list[tuple[int, float]]:
        """All recorded ``(sensor, time)`` death events, in time order."""
        return list(self._death_times)

    def ever_died(self) -> np.ndarray:
        """Boolean mask of sensors that died at least once."""
        return self._ever_died.copy()

    # ------------------------------------------------------------- transitions
    def drain(self, rates: np.ndarray, duration: float, t_start: float) -> list[tuple[int, float]]:
        """Drain all sensors at ``rates`` for ``duration`` starting at
        ``t_start``; returns the *new* death events ``(sensor, time)`` with
        exact crossing times.

        A sensor already at zero that keeps a positive rate is not reported
        again (its death was recorded when it first crossed).
        """
        if duration < 0:
            raise SimulationError(f"drain: negative duration {duration}")
        if duration == 0:
            return []
        r = np.asarray(rates, dtype=np.float64)
        if r.shape != (self.n,):
            raise SimulationError(f"drain: rates shape {r.shape} != ({self.n},)")
        tol = self._batteries * _REL_TOL
        before = self._energy.copy()
        self._energy -= r * duration
        # A death is recorded whenever a not-currently-dead sensor ends the
        # interval strictly below zero. A sensor parked exactly at zero dies
        # at the *start* of the next draining interval (before/rate = 0), so
        # the knife-edge "charged exactly as it empties" stays alive while
        # "left at zero and kept draining" does not.
        crossing = ~self._currently_dead & (self._energy < -tol)
        new_deaths: list[tuple[int, float]] = []
        if np.any(crossing):
            idx = np.nonzero(crossing)[0]
            times = t_start + before[idx] / r[idx]
            for i, tt in sorted(zip(idx.tolist(), times.tolist()), key=lambda p: p[1]):
                new_deaths.append((int(i), float(tt)))
                self._ever_died[i] = True
                self._currently_dead[i] = True
            self._death_times.extend(new_deaths)
        np.clip(self._energy, 0.0, None, out=self._energy)
        return new_deaths

    def charge_full(self, sensors: Sequence[int] | np.ndarray) -> None:
        """Instantaneously restore the given sensors to full capacity
        (the paper's point-to-point charging model)."""
        idx = np.asarray(list(sensors), dtype=np.intp)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.n:
            raise SimulationError(f"charge_full: sensor ids out of range 0..{self.n - 1}")
        self._energy[idx] = self._batteries[idx]
        self._currently_dead[idx] = False
