"""Ground-truth per-sensor energy state and charger-fleet availability."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["EnergyState", "ChargerFleet"]

#: Sensors whose energy reaches at least ``-_ABS_TOL * battery`` are treated
#: as alive: "the battery hits zero exactly as the charger arrives" is a
#: legal knife-edge in the paper's model (gaps may equal tau_i exactly).
_REL_TOL = 1e-6


class EnergyState:
    """Mutable energy vector with drain / charge / death bookkeeping.

    Parameters
    ----------
    batteries:
        ``(n,)`` battery capacities; sensors start full.

    Notes
    -----
    Dead sensors keep draining toward (clamped) zero and *can* be revived by
    a later charge — the simulator records the death event either way, and
    strict callers turn any death into an error. This keeps long experiment
    sweeps running while still reporting every violation.
    """

    __slots__ = ("_batteries", "_energy", "_ever_died", "_currently_dead",
                 "_death_times", "_online", "_n_offline")

    def __init__(self, batteries: np.ndarray) -> None:
        b = np.asarray(batteries, dtype=np.float64)
        if b.ndim != 1 or b.size == 0:
            raise SimulationError(f"EnergyState: need (n,) batteries, got shape {b.shape}")
        if np.any(b <= 0):
            raise SimulationError("EnergyState: batteries must be positive")
        self._batteries = b.copy()
        self._energy = b.copy()
        self._ever_died = np.zeros(b.shape[0], dtype=bool)
        # Dead *now* (cleared by a charge); distinct from the historical
        # ever_died so a revived sensor's second death is reported again.
        self._currently_dead = np.zeros(b.shape[0], dtype=bool)
        self._death_times: list[tuple[int, float]] = []
        # Membership overlay for churn scenarios: offline sensors neither
        # drain nor die nor accept charge. All-online is the static case and
        # must add zero work to it, hence the cached counter.
        self._online = np.ones(b.shape[0], dtype=bool)
        self._n_offline = 0

    # -------------------------------------------------------------- accessors
    @property
    def n(self) -> int:
        return self._batteries.shape[0]

    @property
    def batteries(self) -> np.ndarray:
        """Read-only battery capacities."""
        v = self._batteries.view()
        v.setflags(write=False)
        return v

    @property
    def energy(self) -> np.ndarray:
        """Read-only current energy levels (clamped at 0)."""
        v = self._energy.view()
        v.setflags(write=False)
        return v

    @property
    def fraction(self) -> np.ndarray:
        """Energy as a fraction of capacity."""
        return self._energy / self._batteries

    def residual_lifetimes(self, rates: np.ndarray) -> np.ndarray:
        """``(n,)`` time each sensor survives at the given drain rates."""
        r = np.asarray(rates, dtype=np.float64)
        return np.divide(self._energy, r, out=np.full(self.n, np.inf), where=r > 0)

    @property
    def deaths(self) -> list[tuple[int, float]]:
        """All recorded ``(sensor, time)`` death events, in time order."""
        return list(self._death_times)

    def ever_died(self) -> np.ndarray:
        """Boolean mask of sensors that died at least once."""
        return self._ever_died.copy()

    # ------------------------------------------------------------- membership
    @property
    def online(self) -> np.ndarray:
        """Read-only membership mask (``True`` = online)."""
        v = self._online.view()
        v.setflags(write=False)
        return v

    @property
    def any_offline(self) -> bool:
        """True when at least one sensor is currently offline."""
        return self._n_offline > 0

    def is_online(self, sensor: int) -> bool:
        return bool(self._online[sensor])

    def online_sensors(self) -> np.ndarray:
        """Indices of currently-online sensors, ascending."""
        return np.nonzero(self._online)[0]

    def set_online(self, sensor: int, online: bool) -> None:
        """Flip one sensor's membership. A sensor going offline keeps its
        current energy frozen; a rejoining sensor resumes from that level."""
        s = int(sensor)
        if not 0 <= s < self.n:
            raise SimulationError(f"set_online: sensor {s} out of range 0..{self.n - 1}")
        if bool(self._online[s]) == bool(online):
            return
        self._online[s] = bool(online)
        self._n_offline += -1 if online else 1

    def effective_rates(self, rates: np.ndarray) -> np.ndarray:
        """Drain rates with offline sensors zeroed. Returns ``rates``
        *unchanged* (same object, no copy) when everyone is online, so the
        static path stays bit-identical and allocation-free."""
        if self._n_offline == 0:
            return rates
        return np.where(self._online, rates, 0.0)

    # ------------------------------------------------------------- transitions
    def drain(self, rates: np.ndarray, duration: float, t_start: float) -> list[tuple[int, float]]:
        """Drain all sensors at ``rates`` for ``duration`` starting at
        ``t_start``; returns the *new* death events ``(sensor, time)`` with
        exact crossing times.

        A sensor already at zero that keeps a positive rate is not reported
        again (its death was recorded when it first crossed).
        """
        if duration < 0:
            raise SimulationError(f"drain: negative duration {duration}")
        if duration == 0:
            return []
        r = np.asarray(rates, dtype=np.float64)
        if r.shape != (self.n,):
            raise SimulationError(f"drain: rates shape {r.shape} != ({self.n},)")
        tol = self._batteries * _REL_TOL
        before = self._energy.copy()
        self._energy -= r * duration
        # A death is recorded whenever a not-currently-dead sensor ends the
        # interval strictly below zero. A sensor parked exactly at zero dies
        # at the *start* of the next draining interval (before/rate = 0), so
        # the knife-edge "charged exactly as it empties" stays alive while
        # "left at zero and kept draining" does not.
        crossing = ~self._currently_dead & (self._energy < -tol)
        new_deaths: list[tuple[int, float]] = []
        if np.any(crossing):
            idx = np.nonzero(crossing)[0]
            times = t_start + before[idx] / r[idx]
            for i, tt in sorted(zip(idx.tolist(), times.tolist()), key=lambda p: p[1]):
                new_deaths.append((int(i), float(tt)))
                self._ever_died[i] = True
                self._currently_dead[i] = True
            self._death_times.extend(new_deaths)
        np.clip(self._energy, 0.0, None, out=self._energy)
        return new_deaths

    def charge_full(self, sensors: Sequence[int] | np.ndarray) -> None:
        """Instantaneously restore the given sensors to full capacity
        (the paper's point-to-point charging model)."""
        idx = np.asarray(list(sensors), dtype=np.intp)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.n:
            raise SimulationError(f"charge_full: sensor ids out of range 0..{self.n - 1}")
        self._energy[idx] = self._batteries[idx]
        self._currently_dead[idx] = False


class ChargerFleet:
    """Per-charger availability for breakdown/repair scenarios.

    Parameters
    ----------
    q:
        Number of mobile chargers; all start available.

    The engine consults the fleet at every dispatch: a scheduling's tour for
    an unavailable charger is replaced by the stay-at-home tour (the plan is
    degraded, not rejected — the paper's cost model already prices empty
    tours at zero). All-available is the static case and costs one counter
    check per dispatch.
    """

    __slots__ = ("_available", "_n_down")

    def __init__(self, q: int) -> None:
        if q <= 0:
            raise SimulationError(f"ChargerFleet: need q >= 1 chargers, got {q}")
        self._available = np.ones(int(q), dtype=bool)
        self._n_down = 0

    @property
    def q(self) -> int:
        return self._available.shape[0]

    @property
    def available(self) -> np.ndarray:
        """Read-only availability mask (``True`` = operational)."""
        v = self._available.view()
        v.setflags(write=False)
        return v

    @property
    def all_available(self) -> bool:
        return self._n_down == 0

    @property
    def n_available(self) -> int:
        return self.q - self._n_down

    def is_available(self, charger: int) -> bool:
        return bool(self._available[charger])

    def set_available(self, charger: int, available: bool) -> None:
        """Flip one charger's availability (breakdown or repair)."""
        l = int(charger)
        if not 0 <= l < self.q:
            raise SimulationError(f"set_available: charger {l} out of range 0..{self.q - 1}")
        if bool(self._available[l]) == bool(available):
            return
        self._available[l] = bool(available)
        self._n_down += -1 if available else 1
