"""Aggregate simulation metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.events import ChargeEvent, DeathEvent, DispatchEvent

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Accumulated over one simulation run.

    Attributes
    ----------
    service_cost:
        Total travel distance of all chargers (the paper's objective).
    per_charger:
        ``(q,)`` distance per charger.
    dispatches, charges, deaths:
        The full event log, in time order.
    """

    q: int
    service_cost: float = 0.0
    energy_delivered: float = 0.0
    per_charger: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dispatches: list[DispatchEvent] = field(default_factory=list)
    charges: list[ChargeEvent] = field(default_factory=list)
    deaths: list[DeathEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.per_charger.size == 0:
            self.per_charger = np.zeros(self.q, dtype=np.float64)

    # ----------------------------------------------------------- aggregates
    @property
    def n_dispatches(self) -> int:
        """Number of charging schedulings executed."""
        return len(self.dispatches)

    @property
    def n_charges(self) -> int:
        """Total sensor-charges performed."""
        return len(self.charges)

    @property
    def n_deaths(self) -> int:
        """Number of death events (0 means the run was perpetual)."""
        return len(self.deaths)

    @property
    def perpetual(self) -> bool:
        """True iff no sensor ever ran out of energy."""
        return not self.deaths

    def mean_dispatch_cost(self) -> float:
        """Average tour-set length per dispatch (0 if none)."""
        if not self.dispatches:
            return 0.0
        return self.service_cost / len(self.dispatches)

    def cost_per_energy(self) -> float:
        """Metres driven per unit of energy delivered — the fleet's
        efficiency (lower is better; ``inf`` if nothing was delivered)."""
        if self.energy_delivered <= 0:
            return float("inf")
        return self.service_cost / self.energy_delivered

    def closest_call(self) -> ChargeEvent | None:
        """The charge that arrived with the least energy remaining — how
        tightly the policy cuts its margins (``None`` if no charges)."""
        if not self.charges:
            return None
        return min(self.charges, key=lambda ev: ev.energy_before)

    def charges_per_sensor(self, n: int) -> np.ndarray:
        """``(n,)`` number of times each sensor was charged."""
        out = np.zeros(n, dtype=np.int64)
        for c in self.charges:
            out[c.sensor] += 1
        return out

    def summary(self) -> str:
        """Human-readable digest."""
        status = "perpetual" if self.perpetual else f"{self.n_deaths} DEATHS"
        return (f"service_cost={self.service_cost:.1f} "
                f"dispatches={self.n_dispatches} charges={self.n_charges} "
                f"[{status}]")
