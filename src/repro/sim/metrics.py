"""Aggregate simulation metrics and the bounded event log.

Metrics hold one :class:`EventLog` per event kind. A log behaves like the
plain list it used to be (append / len / index / iterate), but can be
bounded to a ring of the most recent events and/or spilled to JSONL via the
:mod:`repro.obs.trace` encoding, so 100x-horizon runs keep flat memory
while counts (``n_dispatches`` etc.) stay exact via ``EventLog.total``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any, Iterator

import numpy as np

from repro.obs.trace import TraceEvent
from repro.sim.events import ChargeEvent

__all__ = ["Metrics", "EventLog", "EventSpill"]

#: Log names in merge order for coincident timestamps — mirrors the event
#: priority classes (fleet/churn/requests are state changes, dispatches and
#: their charges follow, deaths interleave by time like everything else).
_LOG_ORDER = ("fleet", "churn", "requests", "deaths", "dispatches", "charges")


class EventSpill:
    """Append-only JSONL sink for simulation events.

    Each record is a :class:`~repro.obs.trace.TraceEvent` dict with name
    ``sim.<log>``, ``kind="event"``, ``t`` = simulation time and the event's
    remaining fields as attrs, so existing trace tooling
    (:func:`repro.obs.trace.read_jsonl`) reads spilled logs directly.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self._path.open("w", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def write(self, log_name: str, event: Any) -> None:
        if self._fh is None:
            return
        attrs = asdict(event)
        t = attrs.pop("time", 0.0)
        rec = TraceEvent(name=f"sim.{log_name}", kind="event", t=float(t), attrs=attrs)
        self._fh.write(json.dumps(rec.to_dict(), separators=(",", ":")))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventSpill":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class EventLog:
    """List-like event container, optionally bounded and/or spilled.

    Parameters
    ----------
    maxlen:
        Keep only the most recent ``maxlen`` events in memory (``None`` =
        unbounded, the default — exactly the old plain-list behaviour).
    spill:
        Optional :class:`EventSpill`; every appended event is also written
        there, bounded or not.
    name:
        Log name used in spill records and serialization.

    ``total`` counts every append ever; ``len`` is what is still held.
    """

    __slots__ = ("_items", "_total", "_spill", "name", "maxlen")

    def __init__(self, maxlen: int | None = None,
                 spill: EventSpill | None = None, name: str = "") -> None:
        self.maxlen = maxlen
        self.name = name
        self._items: Any = [] if maxlen is None else deque(maxlen=maxlen)
        self._total = 0
        self._spill = spill

    # --------------------------------------------------------- list protocol
    def append(self, event: Any) -> None:
        self._total += 1
        self._items.append(event)
        if self._spill is not None:
            self._spill.write(self.name, event)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return len(self._items) > 0

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Any:
        if isinstance(index, slice):
            return list(self._items)[index]
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return list(self._items) == list(other._items)
        if isinstance(other, (list, tuple)):
            return list(self._items) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        bound = "" if self.maxlen is None else f", maxlen={self.maxlen}"
        return f"EventLog({list(self._items)!r}{bound})"

    # ------------------------------------------------------------- accounting
    @property
    def total(self) -> int:
        """Number of events ever appended (>= ``len`` when bounded)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events evicted from the in-memory window."""
        return self._total - len(self._items)


@dataclass
class Metrics:
    """Accumulated over one simulation run.

    Attributes
    ----------
    service_cost:
        Total travel distance of all chargers (the paper's objective).
    per_charger:
        ``(q,)`` distance per charger.
    dispatches, charges, deaths:
        The slotted-model event log, in time order.
    fleet, churn, requests:
        Dynamic-scenario logs: charger breakdown/repair, sensor
        leave/rejoin, charging-request arrivals (empty in static runs).
    """

    q: int
    service_cost: float = 0.0
    energy_delivered: float = 0.0
    per_charger: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dispatches: EventLog = field(default_factory=EventLog)
    charges: EventLog = field(default_factory=EventLog)
    deaths: EventLog = field(default_factory=EventLog)
    fleet: EventLog = field(default_factory=EventLog)
    churn: EventLog = field(default_factory=EventLog)
    requests: EventLog = field(default_factory=EventLog)
    #: Exact breakdown tally kept by the engine at append time, so
    #: :attr:`n_failures` survives ring-buffer truncation of ``fleet``.
    breakdowns: int = 0

    def __post_init__(self) -> None:
        if self.per_charger.size == 0:
            self.per_charger = np.zeros(self.q, dtype=np.float64)
        for name in _LOG_ORDER:
            log = getattr(self, name)
            if isinstance(log, EventLog) and not log.name:
                log.name = name

    @classmethod
    def create(cls, q: int, *, max_log_events: int | None = None,
               spill: EventSpill | None = None) -> "Metrics":
        """Build with every log bounded to ``max_log_events`` and/or wired
        to a JSONL ``spill`` (the engine's factory)."""
        logs = {name: EventLog(maxlen=max_log_events, spill=spill, name=name)
                for name in _LOG_ORDER}
        return cls(q=q, **logs)

    # ----------------------------------------------------------- aggregates
    @property
    def n_dispatches(self) -> int:
        """Number of charging schedulings executed."""
        return _count(self.dispatches)

    @property
    def n_charges(self) -> int:
        """Total sensor-charges performed."""
        return _count(self.charges)

    @property
    def n_deaths(self) -> int:
        """Number of death events (0 means the run was perpetual)."""
        return _count(self.deaths)

    @property
    def n_failures(self) -> int:
        """Charger breakdown events (availability going down)."""
        if self.breakdowns:
            return self.breakdowns
        # Metrics built outside the engine (hand-assembled logs): count the
        # kept window, estimating the evicted half if the ring truncated.
        return sum(1 for ev in self.fleet if not ev.available) + _breakdown_dropped(self.fleet)

    @property
    def n_churn_events(self) -> int:
        """Total membership flips (leaves + rejoins)."""
        return _count(self.churn)

    @property
    def n_requests(self) -> int:
        """Charging-request arrivals."""
        return _count(self.requests)

    @property
    def perpetual(self) -> bool:
        """True iff no sensor ever ran out of energy."""
        return self.n_deaths == 0

    def mean_dispatch_cost(self) -> float:
        """Average tour-set length per dispatch (0 if none)."""
        n = self.n_dispatches
        if n == 0:
            return 0.0
        return self.service_cost / n

    def cost_per_energy(self) -> float:
        """Metres driven per unit of energy delivered — the fleet's
        efficiency (lower is better; ``inf`` if nothing was delivered)."""
        if self.energy_delivered <= 0:
            return float("inf")
        return self.service_cost / self.energy_delivered

    def closest_call(self) -> ChargeEvent | None:
        """The charge that arrived with the least energy remaining — how
        tightly the policy cuts its margins (``None`` if no charges)."""
        if not self.charges:
            return None
        return min(self.charges, key=lambda ev: ev.energy_before)

    def charges_per_sensor(self, n: int) -> np.ndarray:
        """``(n,)`` number of times each sensor was charged."""
        out = np.zeros(n, dtype=np.int64)
        for c in self.charges:
            out[c.sensor] += 1
        return out

    def event_log_jsonl(self) -> str:
        """Canonical one-event-per-line serialization of the merged log.

        Events from all logs are merged by ``(time, log rank, position)``
        — a total, deterministic order — and encoded like the spill format.
        Two runs are replay-identical iff these strings are byte-equal; the
        CI determinism smoke and ``repro check sim`` compare exactly this.
        """
        rows: list[tuple[float, int, int, str]] = []
        for rank, name in enumerate(_LOG_ORDER):
            for pos, ev in enumerate(getattr(self, name)):
                attrs = asdict(ev)
                t = attrs.pop("time", 0.0)
                rec = TraceEvent(name=f"sim.{name}", kind="event", t=float(t),
                                 attrs=attrs)
                rows.append((float(t), rank, pos,
                             json.dumps(rec.to_dict(), separators=(",", ":"))))
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        return "\n".join(r[3] for r in rows) + ("\n" if rows else "")

    def summary(self) -> str:
        """Human-readable digest."""
        status = "perpetual" if self.perpetual else f"{self.n_deaths} DEATHS"
        extra = ""
        if self.fleet or self.churn or self.requests:
            extra = (f" failures={self.n_failures} churn={self.n_churn_events}"
                     f" requests={self.n_requests}")
        return (f"service_cost={self.service_cost:.1f} "
                f"dispatches={self.n_dispatches} charges={self.n_charges} "
                f"[{status}]{extra}")


def _count(log: Any) -> int:
    """True event count: ``total`` for bounded logs, ``len`` for lists."""
    return log.total if isinstance(log, EventLog) else len(log)


def _breakdown_dropped(log: Any) -> int:
    """Evicted fleet events counted as breakdowns (every second one is)."""
    if not isinstance(log, EventLog) or log.dropped == 0:
        return 0
    # Breakdown/repair strictly alternate per charger, so evicted events
    # split evenly (±q); engine-built Metrics carry the exact tally in
    # :attr:`Metrics.breakdowns` and never reach this estimate.
    return log.dropped // 2


