"""Markdown generation for EXPERIMENTS.md.

``repro report`` runs a set of registered figures and renders a
paper-vs-measured markdown document: per panel, the fixed setup, the sweep
table, the headline ratio, the zero-deaths statement and the verdict on the
registered qualitative check. EXPERIMENTS.md in this repository is the
output of exactly this code path.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

import numpy as np

from repro.experiments.figures import FIGURES, FigureSpec
from repro.experiments.sweeps import SweepResult
from repro.reporting.summary import headline_pair

__all__ = ["figure_markdown", "experiments_markdown", "PAPER_PANELS", "DISCUSSION"]

#: The panels of the paper's evaluation, in paper order.
PAPER_PANELS = ("fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6")

#: Per-figure reproduction notes, rendered into the generated document so
#: they survive regeneration. Keep these about *interpretation* — the
#: numbers themselves come from the run.
DISCUSSION: dict[str, str] = {
    "fig1a": ("The measured band lands inside the paper's reported 55-60%. "
              "The win comes from piggybacking long-cycle sensors onto tours "
              "the short-cycle (sink-adjacent) sensors already pay for."),
    "fig1b": ("With short-cycle sensors scattered (no geometric structure to "
              "exploit), the measured ~0.9 matches the paper's 87-93% band."),
    "fig2a": ("The crossover at tau_max ≈ 10 reproduces: below it most "
              "sensors share short cycles and both algorithms sweep the "
              "whole field; beyond it the class structure pays off "
              "increasingly (measured ratio falls to ~0.59 at tau_max=50)."),
    "fig2b": ("As in the paper, the random distribution keeps the two "
              "algorithms within a few percent at every tau_max."),
    "fig3": ("The adaptive variant retains the fixed-cycle win under "
             "ΔT=10, sigma=2 — the paper's 'still competitive' claim."),
    "fig4": ("The Fig. 2(a) shape survives variable cycles: parity at small "
             "tau_max, a growing win beyond."),
    "fig5": ("Costs fall and the gap widens with stability, as in the paper. "
             "At ΔT=1 the paper reports near-parity; with the paper-faithful "
             "patch tie-break we measure 0.8-1.0 depending on the topology "
             "mix. The `abl-tiebreak` ablation shows the parity is an "
             "artefact of front-loading equal-cost patch attachments — "
             "deferring them keeps the ratio near 0.6 even at ΔT=1."),
    "fig6": ("Textbook reproduction: both costs rise with sigma and the "
             "ratio climbs from ~0.5 at sigma=2 to ~1.0 at sigma=50, where "
             "far-from-sink sensors can draw short cycles and the linear "
             "structure the algorithm exploits is gone."),
    "abl-refine": ("2-opt shaves a few percent off every algorithm's tours "
                   "without affecting feasibility; the planner's structural "
                   "win over greedy is unchanged — it is not an artefact of "
                   "sloppy tour construction."),
    "abl-q": ("MinTotalDistance is nearly insensitive to fleet size (its "
              "depot-0 co-location plus batching already capture the value); "
              "greedy benefits more from extra depots."),
    "abl-base": ("Monotone degradation with growing base: on tau in [1,50] "
                 "the rounding loss always beats the class-count saving, and "
                 "b=6 loses to greedy outright. The paper's b=2 is right."),
    "abl-baselines": ("Charge-everything costs several times greedy, "
                      "quantifying the paper's Section III.C remark. "
                      "Periodic-without-merging coincides with greedy on a "
                      "shared grid — the power-of-two merging is the entire "
                      "source of the algorithm's advantage."),
    "abl-tiebreak": ("Deferring equal-cost patch attachments (this library's "
                     "improvement) dominates the paper-faithful front-loading "
                     "at every ΔT, most dramatically under extreme "
                     "instability."),
    "abl-deployment": ("The advantage lives in the cycle structure, not the "
                       "coordinates: clustered and grid layouts keep ratios "
                       "close to the uniform headline number."),
}


def _markdown_table(header: list[str], rows: list[list]) -> str:
    def fmt(v) -> str:
        if isinstance(v, float):
            # Ratios and other small quantities need real precision;
            # service costs in metres do not.
            return f"{v:.3f}" if abs(v) < 100 else f"{v:,.1f}"
        return str(v)

    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(fmt(c) for c in row) + " |" for row in rows]
    return "\n".join(lines)


def figure_markdown(spec: FigureSpec, result: SweepResult) -> str:
    """One panel's paper-vs-measured markdown section."""
    setup = result.cells[0].config if result.cells else spec.base
    pair = headline_pair(result)

    header = result.header()
    rows = result.rows()
    if pair is not None:
        header = header + [f"{pair[0]}/{pair[1]}"]
        rows = [row + [float(r)]
                for row, r in zip(rows, result.ratio_series(*pair))]

    out = [f"### {spec.figure_id} — {spec.title}", ""]
    out.append(f"*Paper claim:* {spec.paper_claim}")
    out.append("")
    out.append(f"*Setup:* `{setup.describe()}`, sweeping `{spec.parameter}` "
               f"over {list(result.values)}.")
    out.append("")
    out.append(_markdown_table(header, rows))
    out.append("")
    if pair is not None:
        ratios = result.ratio_series(*pair)
        out.append(f"*Measured:* mean {pair[0]}/{pair[1]} cost ratio "
                   f"**{float(np.mean(ratios)):.3f}** "
                   f"(min {ratios.min():.3f}, max {ratios.max():.3f}).")
    deaths = sum(int(result.deaths(a).sum()) for a in result.algorithms)
    out.append("*Perpetuity:* no sensor ever ran out of energy."
               if deaths == 0 else
               f"*Perpetuity:* **{deaths} deaths recorded** (violation!).")
    if spec.check is not None:
        verdict = "**PASS**" if spec.check(result) else "**FAIL**"
        out.append(f"*Registered shape check:* {verdict}.")
    note = DISCUSSION.get(spec.figure_id)
    if note:
        out.append(f"*Notes:* {note}")
    out.append("")
    return "\n".join(out)


def experiments_markdown(
        figure_ids: Iterable[str], *, n_topologies: int | None = None,
        full: bool = False,
        progress: Callable[[str], None] | None = None,
        obs=None, jobs: int = 1) -> str:
    """Run the given figures and render the full document (summary table
    first, then one section per figure). ``obs`` (optional
    :class:`~repro.obs.instrument.Instrumentation`) is forwarded to every
    figure run, ``jobs`` to every cell (parallel topology jobs; results are
    identical to the serial path)."""
    ids = list(figure_ids)
    sections: list[str] = []
    summary_rows: list[str] = []
    for fid in ids:
        spec = FIGURES[fid]
        if progress is not None:
            progress(f"[report] running {fid} ...")
        t0 = time.perf_counter()
        result = spec.run(n_topologies=n_topologies, full=full,
                          progress=progress, obs=obs, jobs=jobs)
        elapsed = time.perf_counter() - t0
        sections.append(figure_markdown(spec, result)
                        + f"*(run time {elapsed:.0f}s)*\n")

        pair = headline_pair(result)
        ratio = (f"{float(np.mean(result.ratio_series(*pair))):.3f} "
                 f"({pair[0]}/{pair[1]})" if pair else "—")
        deaths = sum(int(result.deaths(a).sum()) for a in result.algorithms)
        verdict = ("PASS" if spec.check is not None and spec.check(result)
                   else "FAIL" if spec.check is not None else "—")
        alive = "yes" if deaths == 0 else f"NO ({deaths} deaths)"
        summary_rows.append(
            f"| [{fid}](#{fid.replace('-', '')}--) | {ratio} | {alive} | {verdict} |")

    reps = n_topologies if n_topologies is not None else "figure defaults"
    head = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `repro report`. Absolute service costs are not",
        "expected to match the paper (different random topologies and an",
        "independent simulator); the *shapes* — who wins, by what factor,",
        "where the crossovers fall — are the reproduction targets.",
        "",
        f"Repetitions per sweep point: {reps} "
        f"(paper: 100). Grid: {'paper-dense' if full else 'coarse'}.",
        "",
        "## Summary",
        "",
        "| figure | mean cost ratio | perpetual | shape check |",
        "|---|---|---|---|",
        *summary_rows,
        "",
    ]
    return "\n".join(head) + "\n" + "\n".join(sections)
