"""Live terminal/SVG dashboard over a ``watch`` metric stream.

``repro watch`` feeds every received :class:`~repro.obs.live.WatchFrame`
into a :class:`DashboardState` and renders :func:`render_dashboard` — a
plain-text panel showing fleet-wide request rate, plan-latency quantiles
(from merged sketches, see :mod:`repro.obs.live`), cache-tier hit rates,
per-shard gauges, shard up/down state and recent membership events.
Everything is stdlib: the consumer must run anywhere a terminal does.

Pointed at a running ``repro score --jobs N --live progress.jsonl``,
:class:`ScoreTail` folds the scoreboard's NDJSON progress stream into the
same panel, with per-cell ``service_cost`` deltas against the checked-in
golden scorecard when one exists.

:func:`save_dashboard_svg` writes the same panel as a self-contained SVG
(the :mod:`repro.reporting.svg` idiom) for READMEs and CI artifacts.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from repro.obs.live import LiveAggregator, WatchFrame

__all__ = ["DashboardState", "ScoreTail", "render_dashboard",
           "dashboard_svg", "save_dashboard_svg"]

#: The request-total counter used for the headline rate, first match wins
#: (a fleet router counts ``fleet.requests``; a bare serve node only
#: ``serve.requests``).
_RATE_COUNTERS = ("fleet.requests", "serve.requests")

#: Cache tiers rendered as hit rates: label -> (hit counter, miss counter).
_CACHE_TIERS = (
    ("tours", "plan.cache.tours.hit", "plan.cache.tours.miss"),
    ("forest", "plan.cache.forest.hit", "plan.cache.forest.miss"),
    ("disk", "plan.cache.disk.hits", "plan.cache.disk.misses"),
)

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _spark(values: list[float], width: int = 16) -> str:
    """A unicode sparkline of the last ``width`` samples."""
    tail = values[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_BLOCKS[0] * len(tail)
    return "".join(
        _SPARK_BLOCKS[min(len(_SPARK_BLOCKS) - 1,
                          int(v / top * (len(_SPARK_BLOCKS) - 1) + 0.5))]
        for v in tail)


class DashboardState:
    """Consumer-side fold of a watch stream into renderable state.

    Aggregate frames (from a fleet router) are the view directly; delta
    frames (from a bare serve node) are folded through a local
    :class:`~repro.obs.live.LiveAggregator` first, so the dashboard
    applies the same per-kind merge rules regardless of what it watches.
    """

    def __init__(self, window: int = 32) -> None:
        self._agg = LiveAggregator()
        self.frame: WatchFrame | None = None
        self.started: float | None = None
        self.n_frames = 0
        self.events: deque[dict] = deque(maxlen=8)
        self._history: deque[tuple[float, dict[str, float]]] = \
            deque(maxlen=max(2, window))
        self._rates: deque[float] = deque(maxlen=max(2, window))

    def ingest(self, frame: WatchFrame) -> None:
        if frame.kind == "aggregate":
            view = frame
        else:
            self._agg.ingest(frame)
            view = self._agg.frame(source=frame.source)
            view.seq = frame.seq
        if self.started is None:
            self.started = view.t
        for event in view.events:
            self.events.append(dict(event, t=view.t))
        if self._history:
            t0, c0 = self._history[-1]
            dt = view.t - t0
            if dt > 0:
                name = self.rate_counter()
                self._rates.append(
                    max(0.0, (view.counters.get(name, 0.0)
                              - c0.get(name, 0.0)) / dt))
        self._history.append((view.t, dict(view.counters)))
        self.frame = view
        self.n_frames += 1

    def rate_counter(self) -> str:
        """The counter the headline rps is derived from."""
        counters = self.frame.counters if self.frame else {}
        for name in _RATE_COUNTERS:
            if name in counters:
                return name
        return _RATE_COUNTERS[-1]

    def rps(self) -> float:
        """Requests/second over the sliding window."""
        if len(self._history) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self._history[0], self._history[-1]
        dt = t1 - t0
        if dt <= 0:
            return 0.0
        name = self.rate_counter()
        return max(0.0, (c1.get(name, 0.0) - c0.get(name, 0.0)) / dt)

    def rate_history(self) -> list[float]:
        """Per-frame rps samples (sparkline fodder)."""
        return list(self._rates)


class ScoreTail:
    """Incremental reader of a ``repro score --live`` NDJSON stream.

    :meth:`poll` consumes whatever complete lines were appended since the
    last call (a torn final line simply waits for the next poll). When the
    stream names its suite and a golden scorecard exists for it, scored
    cells are annotated with their ``service_cost`` delta vs the golden.
    """

    def __init__(self, path: str | Path,
                 baseline_path: str | Path | None = None) -> None:
        self.path = Path(path)
        self.suite: str | None = None
        self.done = 0
        self.total = 0
        self.scenarios_done = 0
        self.scenarios_total = 0
        self.current: str | None = None
        self.finished = False
        self.cells: dict[str, dict[str, dict | None]] = {}
        self._offset = 0
        self._baseline_path = baseline_path
        self._baseline: Any = None
        self._baseline_missing = False

    def poll(self) -> bool:
        """Consume new complete lines; True when anything changed."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return False
        if not chunk:
            return False
        lines = chunk.split("\n")
        partial = lines.pop()  # "" when the chunk ended on a newline
        consumed = len(chunk) - len(partial)
        if consumed <= 0:
            return False
        self._offset += consumed
        changed = False
        for line in lines:
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict) and data.get("stream") == "score":
                self._apply(data)
                changed = True
        return changed

    def _apply(self, data: Mapping[str, Any]) -> None:
        event = data.get("event")
        if event == "start":
            self.suite = data.get("suite")
            self.total = int(data.get("total_instances", 0))
            self.scenarios_total = len(data.get("scenarios", []))
        elif event == "instance":
            self.done = int(data.get("done", self.done))
            self.total = int(data.get("total", self.total))
            self.current = data.get("scenario")
        elif event == "scenario":
            self.scenarios_done = int(data.get("index", self.scenarios_done))
            name = str(data.get("scenario"))
            self.cells[name] = data.get("cells") or {}
        elif event == "done":
            self.finished = True

    def golden_cost(self, scenario: str, policy: str) -> float | None:
        """The golden scorecard's ``service_cost`` for a cell, if any."""
        if self._baseline is None and not self._baseline_missing:
            try:
                from repro.scenarios import Scorecard, default_baseline_path

                path = (Path(self._baseline_path) if self._baseline_path
                        else default_baseline_path(self.suite or "quick"))
                if path.exists():
                    self._baseline = Scorecard.load(path)
                else:
                    self._baseline_missing = True
            except Exception:
                self._baseline_missing = True
        if self._baseline is None:
            return None
        metrics = self._baseline.metrics(scenario, policy)
        if not metrics:
            return None
        value = metrics.get("service_cost")
        return None if value is None else float(value)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def _row(label: str, body: str, width: int) -> str:
    return f"{label:<14} {body}"[:width]


def render_dashboard(state: DashboardState,
                     score: ScoreTail | None = None,
                     width: int = 96) -> str:
    """The dashboard panel as plain text (one call per frame)."""
    lines: list[str] = []
    frame = state.frame
    if frame is None:
        return "repro watch — waiting for the first frame..."

    uptime = max(0.0, frame.t - (state.started or frame.t))
    head = (f"repro watch — {frame.source}  seq {frame.seq}  "
            f"up {uptime:6.1f}s  frames {state.n_frames}  "
            f"dropped {frame.dropped}")
    lines.append(head[:width])
    lines.append("-" * min(width, len(head)))

    if frame.shards:
        body = "  ".join(f"{name}:{stat}"
                         for name, stat in sorted(frame.shards.items()))
        lines.append(_row("shards", body, width))

    name = state.rate_counter()
    total = frame.counters.get(name, 0.0)
    body = (f"{state.rps():7.1f} rps  {_spark(state.rate_history())}  "
            f"total {total:.0f}  "
            f"coalesced {frame.counters.get('serve.coalesced', 0):.0f}  "
            f"rejected {frame.counters.get('serve.rejected', 0):.0f}  "
            f"failed {frame.counters.get('serve.failed', 0):.0f}")
    lines.append(_row("throughput", body, width))

    for timer in sorted(frame.quantiles):
        q = frame.quantiles[timer]
        body = (f"{timer:<16} n={q.get('count', 0):<7.0f}"
                f"p50 {_fmt_ms(q.get('p50', 0.0)):>8}  "
                f"p90 {_fmt_ms(q.get('p90', 0.0)):>8}  "
                f"p99 {_fmt_ms(q.get('p99', 0.0)):>8}")
        if "mean" in q:
            body += f"  mean {_fmt_ms(q['mean']):>8}"
        lines.append(_row("latency ms" if timer == sorted(frame.quantiles)[0]
                          else "", body, width))

    tiers: list[str] = []
    for label, hit_key, miss_key in _CACHE_TIERS:
        hits = frame.counters.get(hit_key, 0.0)
        lookups = hits + frame.counters.get(miss_key, 0.0)
        if lookups:
            tiers.append(f"{label} {hits:.0f}/{lookups:.0f} "
                         f"({100.0 * hits / lookups:.0f}%)")
    served = frame.counters.get("serve.plan_cache.hit", 0.0)
    if served:
        tiers.append(f"served {served:.0f}")
    if tiers:
        lines.append(_row("cache tiers", "  ".join(tiers), width))

    for gauge in sorted(frame.gauges):
        entry = frame.gauges[gauge]
        if isinstance(entry, Mapping):
            per = entry.get("per_shard", {})
            body = (f"{gauge:<18} max {entry.get('max', 0.0):g}  "
                    + "  ".join(f"{s}={v:g}" for s, v in sorted(per.items())))
        else:  # a bare serve node's flat gauge value
            body = f"{gauge:<18} {entry:g}"
        lines.append(_row("gauges" if gauge == sorted(frame.gauges)[0]
                          else "", body, width))

    if frame.active:
        body = "  ".join(f"{span}={n}"
                         for span, n in sorted(frame.active.items()))
        lines.append(_row("active spans", body, width))

    for event in state.events:
        what = " ".join(f"{k}={v}" for k, v in event.items() if k != "t")
        lines.append(_row("event", what, width))

    if score is not None:
        lines.append("")
        status = "done" if score.finished else "running"
        lines.append(_row("score",
                          f"suite {score.suite or '?'} [{status}]  "
                          f"instances {score.done}/{score.total}  "
                          f"scenarios {score.scenarios_done}/"
                          f"{score.scenarios_total}", width))
        for scenario in sorted(score.cells):
            for policy, metrics in sorted((score.cells[scenario] or {}).items()):
                if not metrics:
                    continue
                cost = metrics.get("service_cost")
                if cost is None:
                    continue
                body = f"{scenario}/{policy:<14} cost {cost:10.1f}"
                golden = score.golden_cost(scenario, policy)
                if golden:
                    body += f"  golden {golden:10.1f} ({100.0 * (cost - golden) / golden:+.2f}%)"
                lines.append(_row("", body, width))
    return "\n".join(lines)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def dashboard_svg(state: DashboardState, score: ScoreTail | None = None,
                  width: int = 860) -> str:
    """The current panel as a self-contained monospace SVG."""
    text = render_dashboard(state, score=score, width=110)
    rows = text.split("\n")
    line_h = 18
    height = line_h * (len(rows) + 2)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#101418"/>',
    ]
    for i, row in enumerate(rows):
        color = "#7fd4a0" if i == 0 else "#d8dee4"
        parts.append(
            f'<text x="12" y="{line_h * (i + 1.5):.0f}" fill="{color}" '
            f'font-family="monospace" font-size="13" xml:space="preserve">'
            f'{_escape(row)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_dashboard_svg(state: DashboardState, path: str | Path,
                       score: ScoreTail | None = None) -> Path:
    """Write :func:`dashboard_svg` to ``path`` (atomic enough: full rewrite)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(dashboard_svg(state, score=score), encoding="utf-8")
    return out
