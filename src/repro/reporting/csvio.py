"""CSV export of sweep results (stdlib :mod:`csv` only)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Sequence

__all__ = ["write_csv", "sweep_to_csv"]


def write_csv(path: str | Path, header: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> Path:
    """Write a header + rows to ``path`` (parent directories created).

    Returns the resolved path for logging convenience.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(header))
        writer.writerows(rows)
    return p.resolve()


def sweep_to_csv(result, path: str | Path,
                 *, with_deaths: bool = True) -> Path:
    """Export a :class:`~repro.experiments.sweeps.SweepResult`.

    Columns: the swept parameter, then per-algorithm mean cost, cost std,
    and (optionally) total deaths — everything needed to re-plot a paper
    panel without re-running it.
    """
    header: list[str] = [result.parameter]
    for alg in result.algorithms:
        header.extend([f"{alg}_mean_cost", f"{alg}_std_cost"])
        if with_deaths:
            header.append(f"{alg}_deaths")
    rows: list[list] = []
    for v, cell in zip(result.values, result.cells):
        row: list = [v]
        for alg in result.algorithms:
            r = cell.by_name(alg)
            row.extend([r.mean_cost, r.std_cost])
            if with_deaths:
                row.append(r.total_deaths)
        rows.append(row)
    return write_csv(path, header, rows)
