"""Plain-text tables (no third-party dependencies).

The benches print each reproduced figure as a table of the same series the
paper plots; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "render_sweep", "render_timings"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        text = f"{value:.{precision}f}"
        # Don't round a nonzero value into a "0.0" cell (e.g. a
        # failure-rate sweep over 0.005, 0.01, ...): fall back to %g.
        if value != 0.0 and float(text) == 0.0:
            return f"{value:g}"
        return text
    return str(value)


def format_table(header: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, precision: int = 1, indent: str = "") -> str:
    """Render rows as a column-aligned ASCII table.

    Parameters
    ----------
    header:
        Column names.
    rows:
        Cell values; floats are formatted to ``precision`` decimals.
    precision:
        Decimal places for floats.
    indent:
        Prefix prepended to every output line.
    """
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))

    def line(parts: Sequence[str]) -> str:
        padded = [p.rjust(widths[i]) for i, p in enumerate(parts)]
        return indent + "  ".join(padded)

    sep = indent + "  ".join("-" * w for w in widths)
    out = [line(list(header)), sep]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_timings(timers: Mapping[str, Any], *, indent: str = "") -> str:
    """Timing columns for a mapping of span name -> running stat.

    Parameters
    ----------
    timers:
        Typically ``Instrumentation.timers`` — values need ``count``,
        ``total``, ``mean`` and ``vmax`` attributes
        (:class:`repro.obs.instrument.RunningStat`); durations in seconds.
    indent:
        Prefix for every output line.
    """
    rows = [
        [name, s.count, s.total, s.mean * 1e3, s.vmax * 1e3]
        for name, s in sorted(timers.items())
    ]
    return format_table(["span", "calls", "total s", "mean ms", "max ms"],
                        rows, precision=3, indent=indent)


def render_sweep(result, *, precision: int = 1, with_ratio: tuple[str, str] | None = None) -> str:
    """Table for a :class:`~repro.experiments.sweeps.SweepResult`.

    Parameters
    ----------
    result:
        The sweep.
    with_ratio:
        Optional ``(numerator, denominator)`` algorithm pair; appends a
        ratio column (the headline number of most paper figures).
    """
    header = result.header()
    rows = result.rows()
    if with_ratio is not None:
        num, den = with_ratio
        header = header + [f"{num}/{den}"]
        ratios = result.ratio_series(num, den)
        rows = [row + [float(r)] for row, r in zip(rows, ratios)]
    return format_table(header, rows, precision=precision)
