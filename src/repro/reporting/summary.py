"""Paper-vs-measured summaries.

Turns a finished sweep into the prose block EXPERIMENTS.md records for each
panel: the measured series, the headline ratio, whether any sensor ever
died, and whether the figure's registered qualitative check passed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import FigureSpec
from repro.experiments.sweeps import SweepResult
from repro.obs.instrument import Instrumentation
from repro.reporting.table import render_sweep, render_timings

__all__ = ["headline_pair", "sweep_summary", "figure_report"]


def headline_pair(result: SweepResult) -> tuple[str, str] | None:
    """The (algorithm, baseline) pair whose ratio a panel reports:
    the first configured algorithm against 'greedy' when present."""
    algs = result.algorithms
    if "greedy" in algs:
        for a in algs:
            if a != "greedy":
                return a, "greedy"
    if len(algs) >= 2:
        return algs[0], algs[1]
    return None


def sweep_summary(result: SweepResult) -> str:
    """Table plus headline-ratio line for any sweep."""
    pair = headline_pair(result)
    text = render_sweep(result, with_ratio=pair)
    if pair is not None:
        ratios = result.ratio_series(*pair)
        text += (f"\nmean {pair[0]}/{pair[1]} ratio over the sweep: "
                 f"{float(np.mean(ratios)):.3f} "
                 f"(min {ratios.min():.3f}, max {ratios.max():.3f})")
    total_deaths = sum(int(result.deaths(a).sum()) for a in result.algorithms)
    text += ("\nno sensor ever ran out of energy" if total_deaths == 0
             else f"\nWARNING: {total_deaths} sensor deaths recorded")
    return text


def figure_report(spec: FigureSpec, result: SweepResult,
                  instrumentation: Instrumentation | None = None) -> str:
    """Full paper-vs-measured block for one registered figure.

    When ``instrumentation`` carries timing data (the CLI's ``--profile``
    path), a wall-clock timings section is appended.
    """
    setup = result.cells[0].config if result.cells else spec.base
    lines = [
        f"== {spec.figure_id}: {spec.title} ==",
        f"paper claim : {spec.paper_claim}",
        f"setup       : {setup.describe()} | sweep {spec.parameter} over "
        f"{list(result.values)}",
        sweep_summary(result),
    ]
    if spec.check is not None:
        verdict = "PASS" if spec.check(result) else "FAIL"
        lines.append(f"registered shape check: {verdict}")
    if instrumentation is not None and instrumentation.timers:
        lines.append("timings:")
        lines.append(render_timings(instrumentation.timers, indent="  "))
    return "\n".join(lines)
