"""SVG rendering of networks and tours (no plotting dependencies).

Produces a self-contained SVG: sensors as dots (colour-graded by maximum
charging cycle — hot short-cycle sensors in red), depots as squares, the
base station as a star, and optionally one polyline loop per charging tour.
Useful for READMEs, debugging tour shapes, and eyeballing deployments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.errors import ConfigError
from repro.network.model import SensorNetwork
from repro.tsp.tour import Tour

__all__ = ["network_svg", "save_network_svg"]

#: Distinct stroke colours for up to 10 chargers (cycled beyond).
_TOUR_COLORS = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
                "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")


def _cycle_color(frac: float) -> str:
    """Red (short cycle, hot) -> blue (long cycle, relaxed)."""
    frac = min(max(frac, 0.0), 1.0)
    r = int(220 - 160 * frac)
    b = int(60 + 160 * frac)
    return f"rgb({r},70,{b})"


def network_svg(network: SensorNetwork, tours: Sequence[Tour] | None = None,
                *, size: int = 640, label: str | None = None) -> str:
    """Render the network (and optional tours) as an SVG string.

    Parameters
    ----------
    network:
        The WSN instance; the viewport is its deployment area.
    tours:
        Closed tours to draw (e.g. one scheduling's `.tours`); colours cycle
        per charger. Empty tours are skipped.
    size:
        Pixel width (height scales by the area's aspect ratio).
    label:
        Optional caption drawn in the top-left corner.
    """
    if size <= 0:
        raise ConfigError(f"svg size must be positive, got {size}")
    area = network.area
    scale = size / area.width
    height = int(round(area.height * scale))

    def sx(x: float) -> float:
        return (x - area.x0) * scale

    def sy(y: float) -> float:
        return height - (y - area.y0) * scale  # SVG y grows downward

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{height}" viewBox="0 0 {size} {height}">',
        f'<rect width="{size}" height="{height}" fill="#fcfcfc" '
        f'stroke="#999"/>',
    ]

    # Tours underneath the markers.
    if tours:
        for l, tour in enumerate(tours):
            if tour.is_empty:
                continue
            coords = network.coordinates[list(tour.order) + [tour.order[0]]]
            points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in coords)
            color = _TOUR_COLORS[l % len(_TOUR_COLORS)]
            parts.append(f'<polyline points="{points}" fill="none" '
                         f'stroke="{color}" stroke-width="1.5" opacity="0.85"/>')

    # Sensors, colour-graded by cycle.
    tau = network.cycles
    lo, hi = float(tau.min()), float(tau.max())
    span = hi - lo
    for i in range(network.n):
        x, y = network.coordinates[i]
        frac = (float(tau[i]) - lo) / span if span > 0 else 1.0
        parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                     f'fill="{_cycle_color(frac)}"/>')

    # Depots as squares.
    for d in network.depots:
        x, y = sx(d.position.x), sy(d.position.y)
        parts.append(f'<rect x="{x - 5:.1f}" y="{y - 5:.1f}" width="10" '
                     f'height="10" fill="#222" stroke="#fff"/>')

    # Base station as a diamond.
    bx, by = sx(network.base_station.position.x), sy(network.base_station.position.y)
    parts.append(f'<path d="M {bx:.1f} {by - 8:.1f} L {bx + 8:.1f} {by:.1f} '
                 f'L {bx:.1f} {by + 8:.1f} L {bx - 8:.1f} {by:.1f} Z" '
                 f'fill="#f1c40f" stroke="#333"/>')

    if label:
        safe = (label.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))
        parts.append(f'<text x="8" y="18" font-family="sans-serif" '
                     f'font-size="13" fill="#333">{safe}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_network_svg(network: SensorNetwork, path: str | Path,
                     tours: Sequence[Tour] | None = None, *, size: int = 640,
                     label: str | None = None) -> Path:
    """Write :func:`network_svg` output to ``path``; returns the resolved path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(network_svg(network, tours, size=size, label=label))
    return p.resolve()
