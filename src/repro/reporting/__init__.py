"""Result presentation: ASCII tables, CSV export, paper-vs-measured
summaries, markdown report generation and simulation timelines."""

from repro.reporting.csvio import sweep_to_csv, write_csv
from repro.reporting.experiments_md import experiments_markdown, figure_markdown
from repro.reporting.scorecard import (
    save_scorecard_svg,
    scorecard_markdown,
    scorecard_svg,
)
from repro.reporting.summary import figure_report, headline_pair, sweep_summary
from repro.reporting.svg import network_svg, save_network_svg
from repro.reporting.table import format_table, render_sweep
from repro.reporting.timeline import cost_histogram, dispatch_timeline, run_digest

__all__ = [
    "cost_histogram",
    "dispatch_timeline",
    "experiments_markdown",
    "figure_markdown",
    "figure_report",
    "format_table",
    "headline_pair",
    "network_svg",
    "render_sweep",
    "run_digest",
    "save_network_svg",
    "save_scorecard_svg",
    "scorecard_markdown",
    "scorecard_svg",
    "sweep_summary",
    "sweep_to_csv",
    "write_csv",
]
