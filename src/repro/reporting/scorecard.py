"""Scorecard rendering: markdown table and SVG heat table.

Operates on the plain ``scenario -> policy -> metric`` dict plus a
sequence of ``(key, label, fmt)`` column descriptors, so the reporting
layer stays independent of :mod:`repro.scenarios` (callers pass
``repro.scenarios.METRICS``-derived columns).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["scorecard_markdown", "scorecard_svg", "save_scorecard_svg"]

#: ``(metric key, column label, format string)``.
Column = tuple[str, str, str]


def _cell(metrics: Mapping[str, Any] | None, key: str, fmt: str) -> str:
    if metrics is None:
        return "—"
    value = metrics.get(key)
    if value is None:
        return "·"
    return fmt.format(float(value))


def scorecard_markdown(scenarios: Mapping[str, Mapping[str, Mapping[str, Any] | None]],
                       columns: Sequence[Column], *,
                       title: str | None = None) -> str:
    """Render the scorecard as a GitHub-flavoured markdown table.

    One row per ``(scenario, policy)`` pair; ``—`` marks incompatible
    pairs, ``·`` an undefined dimension.
    """
    lines: list[str] = []
    if title:
        lines += [f"## {title}", ""]
    header = ["scenario", "policy"] + [label for _, label, _ in columns]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for scenario, by_policy in scenarios.items():
        for policy, metrics in by_policy.items():
            row = [scenario, policy] + \
                [_cell(metrics, key, fmt) for key, _, fmt in columns]
            lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def scorecard_svg(scenarios: Mapping[str, Mapping[str, Mapping[str, Any] | None]],
                  columns: Sequence[Column], *,
                  title: str = "Scorecard") -> str:
    """Render the scorecard as a self-contained SVG table.

    Pure text-and-rects (same zero-dependency approach as
    :mod:`repro.reporting.svg`); rows alternate background stripes and
    the first row of each scenario carries its name.
    """
    rows: list[tuple[str, str, Mapping[str, Any] | None]] = []
    for scenario, by_policy in scenarios.items():
        first = True
        for policy, metrics in by_policy.items():
            rows.append((scenario if first else "", policy, metrics))
            first = False

    col_w = 86
    name_w = 170
    policy_w = 90
    row_h = 22
    header_h = 54
    width = name_w + policy_w + col_w * len(columns) + 16
    height = header_h + row_h * len(rows) + 12

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="#fcfcfc" '
        f'stroke="#999"/>',
        f'<text x="8" y="20" font-size="14" fill="#333">{title}</text>',
    ]
    # Column headers.
    y = header_h - 12
    parts.append(f'<text x="8" y="{y}" fill="#555">scenario</text>')
    parts.append(f'<text x="{name_w}" y="{y}" fill="#555">policy</text>')
    for c, (_, label, _) in enumerate(columns):
        x = name_w + policy_w + c * col_w
        parts.append(f'<text x="{x + col_w - 6}" y="{y}" fill="#555" '
                     f'text-anchor="end">{label}</text>')
    # Rows.
    for r, (scenario, policy, metrics) in enumerate(rows):
        top = header_h + r * row_h
        if r % 2:
            parts.append(f'<rect x="4" y="{top - 14}" width="{width - 8}" '
                         f'height="{row_h}" fill="#f0f0f0"/>')
        if scenario:
            parts.append(f'<text x="8" y="{top + 2}" fill="#222">'
                         f'{scenario}</text>')
        parts.append(f'<text x="{name_w}" y="{top + 2}" fill="#222">'
                     f'{policy}</text>')
        for c, (key, _, fmt) in enumerate(columns):
            x = name_w + policy_w + c * col_w
            parts.append(f'<text x="{x + col_w - 6}" y="{top + 2}" '
                         f'fill="#333" text-anchor="end">'
                         f'{_cell(metrics, key, fmt)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_scorecard_svg(scenarios: Mapping[str, Mapping[str, Mapping[str, Any] | None]],
                       columns: Sequence[Column], path: str | Path, *,
                       title: str = "Scorecard") -> Path:
    """Write :func:`scorecard_svg` output to ``path``; returns the resolved path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(scorecard_svg(scenarios, columns, title=title))
    return p.resolve()
