"""Text timelines of simulation runs.

Renders what a run *did* — dispatch density, cost per stretch of time,
deaths — as plain text, for terminals and logs. Complements the aggregate
:class:`~repro.sim.metrics.Metrics`: the timeline shows the paper's block
periodicity (Algorithm 3's plans pulse with period ``2^K tau_1``) and the
adaptive policy's storm responses at a glance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.metrics import Metrics

__all__ = ["dispatch_timeline", "cost_histogram", "run_digest"]

#: Unicode block characters from empty to full, for one-line histograms.
_BARS = " ▁▂▃▄▅▆▇█"


def _bin_edges(horizon: float, bins: int) -> np.ndarray:
    if bins < 1:
        raise ConfigError(f"need at least one bin, got {bins}")
    if horizon <= 0:
        raise ConfigError(f"horizon must be positive, got {horizon}")
    return np.linspace(0.0, horizon, bins + 1)


def _sparkline(values: np.ndarray) -> str:
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return ""
    top = v.max()
    if top <= 0:
        return _BARS[0] * v.size
    idx = np.minimum((v / top * (len(_BARS) - 1)).astype(int), len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def dispatch_timeline(metrics: Metrics, horizon: float, *, bins: int = 60) -> str:
    """One-line sparkline of dispatch *cost* over time, plus death markers.

    Each column is one time bin; bar height is the total tour length
    dispatched in the bin (relative to the busiest bin). A second line
    marks bins containing sensor deaths with ``x``.
    """
    edges = _bin_edges(horizon, bins)
    costs = np.zeros(bins)
    for ev in metrics.dispatches:
        b = min(int(np.searchsorted(edges, ev.time, side="right")) - 1, bins - 1)
        costs[max(b, 0)] += ev.cost
    line = _sparkline(costs)
    if metrics.deaths:
        marks = [" "] * bins
        for ev in metrics.deaths:
            b = min(int(np.searchsorted(edges, ev.time, side="right")) - 1, bins - 1)
            marks[max(b, 0)] = "x"
        return line + "\n" + "".join(marks)
    return line


def cost_histogram(metrics: Metrics, horizon: float, *, bins: int = 10) -> list[tuple[float, float, float]]:
    """Binned dispatch cost: list of ``(t_start, t_end, cost)`` rows."""
    edges = _bin_edges(horizon, bins)
    costs = np.zeros(bins)
    for ev in metrics.dispatches:
        b = min(int(np.searchsorted(edges, ev.time, side="right")) - 1, bins - 1)
        costs[max(b, 0)] += ev.cost
    return [(float(edges[i]), float(edges[i + 1]), float(costs[i]))
            for i in range(bins)]


def run_digest(metrics: Metrics, horizon: float, *, bins: int = 60) -> str:
    """Multi-line human digest: summary line + timeline + extremes."""
    lines = [metrics.summary(), dispatch_timeline(metrics, horizon, bins=bins)]
    if metrics.dispatches:
        biggest = max(metrics.dispatches, key=lambda e: e.cost)
        lines.append(
            f"busiest dispatch: t={biggest.time:g}, {biggest.n_sensors} sensors, "
            f"{biggest.cost:,.0f} m across {biggest.n_active_chargers} chargers")
    if metrics.deaths:
        first = metrics.deaths[0]
        lines.append(f"FIRST DEATH: sensor {first.sensor} at t={first.time:g}")
    return "\n".join(lines)
