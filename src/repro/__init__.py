"""repro — Perpetual sensor networks via multiple mobile wireless chargers.

A from-scratch reproduction of

    W. Xu, W. Liang, X. Lin, G. Mao, X. Ren,
    "Towards Perpetual Sensor Networks via Deploying Multiple Mobile
    Wireless Chargers", ICPP 2014.

The library implements the paper's full stack:

* the exact **q-rooted minimum spanning forest** (Algorithm 1) and the
  2-approximate **q-rooted TSP** (Algorithm 2) — :mod:`repro.rooted`;
* the ``2(K+2)``-approximate **MinTotalDistance** scheduler for fixed
  maximum charging cycles (Algorithm 3) — :mod:`repro.core`;
* the adaptive **MinTotalDistance-var** heuristic for variable cycles
  (Section VI) — :mod:`repro.adaptive`;
* the **greedy on-demand** comparator and extra baselines —
  :mod:`repro.baselines`;
* a WSN model, deployment and charging-cycle distributions —
  :mod:`repro.network`;
* an exact event-driven **simulator** — :mod:`repro.sim`;
* the full experiment harness reproducing every figure of the paper's
  evaluation — :mod:`repro.experiments` (CLI: ``repro run fig1a``);
* opt-in instrumentation — counters, wall-clock spans, JSONL traces —
  threaded through every layer above — :mod:`repro.obs`
  (CLI: ``repro --profile ...``; see docs/OBSERVABILITY.md).

Quickstart
----------
>>> from repro import build_paper_network, min_total_distance
>>> net = build_paper_network(n=100, q=5, seed=7)
>>> result = min_total_distance(net, horizon=1000.0)
>>> from repro import simulate, PlannedPolicy, FixedWorkload
>>> out = simulate(net, PlannedPolicy(result.plan),
...                FixedWorkload.from_network(net), 1000.0)
>>> out.metrics.perpetual
True
"""

from repro.adaptive import MinTotalDistanceVarPolicy
from repro.analysis import validate_timescales
from repro.baselines import GreedyOnDemandPolicy, NaiveChargeAllPolicy
from repro.core import (
    ChargingScheduling,
    SchedulePlan,
    check_feasibility,
    lemma3_lower_bound,
    min_total_distance,
    quantize_cycles,
    service_cost,
)
from repro.errors import ReproError
from repro.experiments import ExperimentConfig, run_cell, run_figure, sweep
from repro.io import load_network, load_plan, save_network, save_plan
from repro.network import (
    LinearCycleDistribution,
    NetworkBuilder,
    RandomCycleDistribution,
    SensorNetwork,
    build_paper_network,
)
from repro.obs import Instrumentation, configure_logging
from repro.rooted import q_rooted_msf, q_rooted_tsp
from repro.sim import (
    FixedWorkload,
    PlannedPolicy,
    ResampledWorkload,
    Simulator,
    simulate,
)
from repro.tsp import Tour

__version__ = "1.0.0"

__all__ = [
    "ChargingScheduling",
    "ExperimentConfig",
    "FixedWorkload",
    "GreedyOnDemandPolicy",
    "Instrumentation",
    "LinearCycleDistribution",
    "MinTotalDistanceVarPolicy",
    "NaiveChargeAllPolicy",
    "NetworkBuilder",
    "PlannedPolicy",
    "RandomCycleDistribution",
    "ReproError",
    "ResampledWorkload",
    "SchedulePlan",
    "SensorNetwork",
    "Simulator",
    "Tour",
    "__version__",
    "build_paper_network",
    "check_feasibility",
    "configure_logging",
    "lemma3_lower_bound",
    "load_network",
    "load_plan",
    "min_total_distance",
    "q_rooted_msf",
    "q_rooted_tsp",
    "quantize_cycles",
    "run_cell",
    "run_figure",
    "save_network",
    "save_plan",
    "service_cost",
    "simulate",
    "sweep",
    "validate_timescales",
]
