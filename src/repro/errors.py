"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "NetworkModelError",
    "GraphError",
    "TourError",
    "ScheduleError",
    "InfeasiblePlanError",
    "SimulationError",
    "SensorDeathError",
    "ConfigError",
    "ServeError",
    "CheckError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Invalid geometric input (bad coordinates, empty point sets, ...)."""


class NetworkModelError(ReproError):
    """Inconsistent sensor-network model (duplicate ids, bad cycles, ...)."""


class GraphError(ReproError):
    """Invalid graph operation (disconnected input to MST, bad root, ...)."""


class TourError(ReproError):
    """Invalid tour (missing depot, repeated node, non-closed, ...)."""


class ScheduleError(ReproError):
    """Malformed charging schedule or plan."""


class InfeasiblePlanError(ScheduleError):
    """A charging plan lets at least one sensor run out of energy.

    Attributes
    ----------
    sensor_id:
        Identifier of the first sensor found to violate feasibility.
    time:
        The time at which the violation occurs.
    """

    def __init__(self, message: str, *, sensor_id: int | None = None,
                 time: float | None = None) -> None:
        super().__init__(message)
        self.sensor_id = sensor_id
        self.time = time


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class SensorDeathError(SimulationError):
    """A sensor ran out of energy during a simulation configured as strict.

    Attributes
    ----------
    sensor_id:
        Identifier of the dead sensor.
    time:
        Simulation time of the death event.
    """

    def __init__(self, message: str, *, sensor_id: int, time: float) -> None:
        super().__init__(message)
        self.sensor_id = sensor_id
        self.time = time


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration."""


class ServeError(ReproError):
    """Planning-service failure (wire-protocol violation or server error).

    Raised by :mod:`repro.serve` on both sides of the wire: the server maps
    it to a structured error response, and the client raises it when a
    response carries ``ok: false``.

    Attributes
    ----------
    code:
        The protocol error code (one of
        :data:`repro.serve.protocol.ERROR_CODES`; e.g. ``"overloaded"``,
        ``"deadline_exceeded"``) so callers can switch on the failure mode.
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class CheckError(ReproError):
    """A verification-harness invariant or differential oracle failed.

    Raised by :mod:`repro.check` when two execution paths disagree or a
    runtime invariant is violated. Deliberately distinct from the errors
    the checked code itself raises, so the harness can tell "the library
    rejected bad input" (expected on malformed scenarios) apart from "the
    library silently produced a wrong answer" (the bug class this
    exception exists to report).

    Attributes
    ----------
    invariant:
        Short machine-readable name of the violated invariant or check
        (e.g. ``"full_charge"``, ``"cache_differential"``), or ``None``.
    """

    def __init__(self, message: str, *, invariant: str | None = None) -> None:
        super().__init__(message)
        self.invariant = invariant
