"""Depots (mobile-charger home bases) and the base station."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkModelError
from repro.geometry.point import Point

__all__ = ["Depot", "BaseStation"]


@dataclass(frozen=True, slots=True)
class Depot:
    """Home base of one mobile charger.

    Every charging tour of charger ``l`` starts and ends at its depot
    ``r_l``, where the vehicle refuels/recharges between dispatches.

    Parameters
    ----------
    id:
        Index of the depot, ``0..q-1``; charger ``l`` lives at depot ``l``.
    position:
        Depot location.
    """

    id: int
    position: Point

    def __post_init__(self) -> None:
        if self.id < 0:
            raise NetworkModelError(f"depot id must be non-negative, got {self.id}")


@dataclass(frozen=True, slots=True)
class BaseStation:
    """The stationary sink all sensing data is relayed to.

    The base station plays no direct role in the optimisation (chargers are
    rooted at depots) but anchors the *linear* charging-cycle distribution —
    sensors close to it relay more traffic and so have shorter cycles — and
    the routing substrate's shortest-path trees.
    """

    position: Point
