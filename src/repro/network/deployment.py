"""Random deployments matching the paper's experimental environment.

Section VII: sensors are "randomly deployed" in a 1000 m x 1000 m square;
the base station is at the centre; there are ``q = 5`` depots, *one
co-located with the base station* (because the hungriest sensors cluster
around the sink) and the remaining ``q - 1`` uniformly random.

Beyond the paper, :func:`deploy_clustered` and :func:`deploy_grid` provide
the two other canonical WSN layouts (hotspot monitoring and engineered
installations) so users can test the algorithms off the uniform assumption.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.geometry.rng import make_rng
from repro.network.depot import BaseStation, Depot

__all__ = ["deploy_sensors", "deploy_clustered", "deploy_grid", "place_depots"]


def deploy_sensors(n: int, area: Rect,
                   rng: int | np.random.Generator | None = None) -> list[Point]:
    """``n`` sensor positions drawn uniformly at random in ``area``."""
    if n <= 0:
        raise NetworkModelError(f"deploy_sensors: n must be positive, got {n}")
    return area.sample_points(n, make_rng(rng))


def deploy_clustered(n: int, area: Rect, *, n_clusters: int = 4,
                     spread: float | None = None,
                     rng: int | np.random.Generator | None = None) -> list[Point]:
    """``n`` sensors in Gaussian clusters around random hotspot centres.

    Models hotspot-driven deployments (wildlife corridors, structural
    joints): ``n_clusters`` centres are drawn uniformly, and each sensor is
    a Gaussian draw around a uniformly chosen centre, rejected back into
    the area.

    Parameters
    ----------
    n:
        Number of sensors.
    area:
        Deployment rectangle.
    n_clusters:
        Number of hotspot centres.
    spread:
        Gaussian standard deviation around a centre; defaults to one tenth
        of the area's shorter side.
    rng:
        Seed or generator.
    """
    if n <= 0:
        raise NetworkModelError(f"deploy_clustered: n must be positive, got {n}")
    if n_clusters <= 0:
        raise NetworkModelError(
            f"deploy_clustered: n_clusters must be positive, got {n_clusters}")
    gen = make_rng(rng)
    sd = spread if spread is not None else min(area.width, area.height) / 10.0
    if sd <= 0:
        raise NetworkModelError(f"deploy_clustered: spread must be positive, got {sd}")
    centers = area.sample(n_clusters, gen)
    points: list[Point] = []
    while len(points) < n:
        c = centers[int(gen.integers(n_clusters))]
        x = float(gen.normal(c[0], sd))
        y = float(gen.normal(c[1], sd))
        # Reject draws outside the field; clusters near edges stay inside.
        if area.x0 <= x <= area.x1 and area.y0 <= y <= area.y1:
            points.append(Point(x, y))
    return points


def deploy_grid(n: int, area: Rect, *, jitter: float = 0.0,
                rng: int | np.random.Generator | None = None) -> list[Point]:
    """``n`` sensors on a near-square grid, optionally jittered.

    Models engineered installations (pipelines, smart buildings). The grid
    has ``ceil(sqrt(n))`` columns; the first ``n`` cells (row-major) hold a
    sensor at the cell centre, displaced uniformly by up to
    ``jitter * cell_size`` in each axis (clipped back into the area).
    """
    if n <= 0:
        raise NetworkModelError(f"deploy_grid: n must be positive, got {n}")
    if not (0.0 <= jitter <= 0.5):
        raise NetworkModelError(
            f"deploy_grid: jitter must be in [0, 0.5], got {jitter}")
    gen = make_rng(rng)
    cols = math.ceil(math.sqrt(n))
    rows = math.ceil(n / cols)
    dx, dy = area.width / cols, area.height / rows
    points: list[Point] = []
    for i in range(n):
        r, c = divmod(i, cols)
        x = area.x0 + (c + 0.5) * dx
        y = area.y0 + (r + 0.5) * dy
        if jitter > 0:
            x += float(gen.uniform(-jitter, jitter)) * dx
            y += float(gen.uniform(-jitter, jitter)) * dy
        x = min(max(x, area.x0), area.x1)
        y = min(max(y, area.y0), area.y1)
        points.append(Point(x, y))
    return points


def place_depots(q: int, area: Rect, base_station: BaseStation,
                 rng: int | np.random.Generator | None = None,
                 *, colocate_first: bool = True) -> list[Depot]:
    """Place ``q`` depots in ``area``.

    Parameters
    ----------
    q:
        Number of depots / mobile chargers.
    area:
        Deployment rectangle.
    base_station:
        The sink; when ``colocate_first`` is true, depot 0 is placed exactly
        at its position (the paper's setup).
    rng:
        Seed or generator for the uniformly random remaining depots.
    colocate_first:
        Disable to place all ``q`` depots uniformly at random instead.
    """
    if q <= 0:
        raise NetworkModelError(f"place_depots: q must be positive, got {q}")
    gen = make_rng(rng)
    positions: list[Point] = []
    if colocate_first:
        positions.append(base_station.position)
    positions.extend(area.sample_points(q - len(positions), gen))
    return [Depot(id=i, position=p) for i, p in enumerate(positions)]
