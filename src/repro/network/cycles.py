"""Charging-cycle distributions (Section VII of the paper).

Two distributions drive every experiment in the paper:

* **Linear** — a sensor's *average* cycle grows linearly with its distance
  to the base station (sensors near the sink relay traffic and drain fast);
  the actual cycle is uniform in ``[tau_bar - sigma, tau_bar + sigma]``
  with ``sigma = 2`` by default. Models data-gathering WSNs.
* **Random** — cycles uniform in ``[tau_min, tau_max]`` independent of
  geometry. Models multimedia WSNs where local processing dominates.

Both are exposed behind the tiny :class:`CycleDistribution` protocol so
workloads can resample them per time slot (the variable-cycle experiments),
plus two extras: :class:`ExplicitCycles` for tests, and
:class:`RoutingCycleDistribution` which *derives* cycles from the
:mod:`repro.network.routing` relay-load model instead of postulating them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigError, NetworkModelError
from repro.geometry.rng import make_rng
from repro.network.routing import CommunicationGraph, RoutingTree, relay_loads

__all__ = [
    "CycleDistribution",
    "LinearCycleDistribution",
    "RandomCycleDistribution",
    "ExplicitCycles",
    "RoutingCycleDistribution",
]


@runtime_checkable
class CycleDistribution(Protocol):
    """Samples per-sensor maximum charging cycles for a given geometry."""

    def sample(self, base_distances: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Draw one ``(n,)`` cycle vector.

        Parameters
        ----------
        base_distances:
            ``(n,)`` distance of each sensor to the base station — the only
            geometric covariate any paper distribution needs.
        rng:
            Source of randomness; implementations must not keep state, so a
            workload can call this once per time slot.
        """
        ...


def _check_bounds(tau_min: float, tau_max: float) -> None:
    if not (math.isfinite(tau_min) and math.isfinite(tau_max)):
        raise ConfigError("cycle bounds must be finite")
    if tau_min <= 0:
        raise ConfigError(f"tau_min must be positive, got {tau_min}")
    if tau_max < tau_min:
        raise ConfigError(f"tau_max ({tau_max}) must be >= tau_min ({tau_min})")


@dataclass(frozen=True)
class LinearCycleDistribution:
    """The paper's linear distribution.

    ``tau_bar_i = tau_min + (tau_max - tau_min) * d_i / d_max`` where ``d_i``
    is sensor ``i``'s distance to the base station and ``d_max`` the largest
    such distance in the deployment; then
    ``tau_i ~ Uniform[tau_bar_i - sigma, tau_bar_i + sigma]`` clipped below
    at ``clip_min`` (cycles must stay positive; the paper implicitly floors
    at ``tau_min`` since it reports the realised minimum as ``tau_min``).

    Parameters
    ----------
    tau_min, tau_max:
        Average cycle of the nearest / farthest sensor. Defaults 1 and 50
        (the paper's defaults).
    sigma:
        Half-width of the per-sensor uniform jitter (paper default 2; Fig. 6
        sweeps it to 50).
    clip_min:
        Lower clip for realised cycles; ``None`` means ``tau_min``.
    """

    tau_min: float = 1.0
    tau_max: float = 50.0
    sigma: float = 2.0
    clip_min: float | None = None

    def __post_init__(self) -> None:
        _check_bounds(self.tau_min, self.tau_max)
        if self.sigma < 0:
            raise ConfigError(f"sigma must be non-negative, got {self.sigma}")
        if self.clip_min is not None and self.clip_min <= 0:
            raise ConfigError(f"clip_min must be positive, got {self.clip_min}")

    def mean_cycles(self, base_distances: np.ndarray) -> np.ndarray:
        """The deterministic averages ``tau_bar_i`` (no jitter).

        Distances are min-max normalised so that the sensor *nearest* the
        base station gets exactly ``tau_min`` and the farthest exactly
        ``tau_max``, matching the paper's "the sensors nearest to the base
        station have the minimum average charging cycle" wording.
        """
        d = np.asarray(base_distances, dtype=np.float64)
        if d.ndim != 1 or d.size == 0:
            raise NetworkModelError("mean_cycles: base_distances must be 1-D, non-empty")
        d_min, d_max = float(d.min()), float(d.max())
        span = d_max - d_min
        frac = (d - d_min) / span if span > 0 else np.zeros_like(d)
        return self.tau_min + (self.tau_max - self.tau_min) * frac

    def sample(self, base_distances: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        gen = make_rng(rng)
        bar = self.mean_cycles(base_distances)
        jitter = gen.uniform(-self.sigma, self.sigma, size=bar.shape)
        floor = self.tau_min if self.clip_min is None else self.clip_min
        return np.maximum(bar + jitter, floor)


@dataclass(frozen=True)
class RandomCycleDistribution:
    """The paper's random distribution: ``tau_i ~ Uniform[tau_min, tau_max]``
    independent of sensor location."""

    tau_min: float = 1.0
    tau_max: float = 50.0

    def __post_init__(self) -> None:
        _check_bounds(self.tau_min, self.tau_max)

    def sample(self, base_distances: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        gen = make_rng(rng)
        n = np.asarray(base_distances).shape[0]
        return gen.uniform(self.tau_min, self.tau_max, size=n)


@dataclass(frozen=True)
class ExplicitCycles:
    """A fixed cycle vector wrapped as a distribution (tests, replays)."""

    values: tuple[float, ...]

    def sample(self, base_distances: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        n = np.asarray(base_distances).shape[0]
        if n != len(self.values):
            raise NetworkModelError(
                f"ExplicitCycles: have {len(self.values)} values for n={n} sensors")
        return np.asarray(self.values, dtype=np.float64)


@dataclass(frozen=True)
class RoutingCycleDistribution:
    """Cycles derived from a physical routing/energy model.

    Builds the unit-disk graph over (sensors, base station), routes every
    sensor to the sink along a shortest-path tree, computes per-sensor relay
    load, converts load to an energy rate with a first-order radio model
    (``rate = e_base + e_tx * load``), and returns
    ``tau_i = battery / rate_i`` rescaled into ``[tau_min, tau_max]``.

    The jitter ``sigma`` plays the same role as in the linear distribution.
    Disconnected sensors (out of radio range of everyone) are assigned the
    *shortest* cycle — a conservative stand-in for "we cannot predict them".

    Parameters
    ----------
    comm_range:
        Radio range in metres.
    tau_min, tau_max:
        Range the derived cycles are rescaled into (so experiments stay
        comparable with the postulated distributions).
    sigma:
        Uniform jitter half-width applied after rescaling.
    e_base, e_tx:
        Radio-model constants: idle/sensing floor and per-packet relay cost.
    """

    comm_range: float = 150.0
    tau_min: float = 1.0
    tau_max: float = 50.0
    sigma: float = 0.0
    e_base: float = 1.0
    e_tx: float = 1.0
    #: coordinates of the base station, set at construction by the builder
    base_position: tuple[float, float] = (500.0, 500.0)
    #: sensor coordinates; required because relay load depends on the full
    #: geometry, not just base distances.
    coords: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        _check_bounds(self.tau_min, self.tau_max)
        if self.comm_range <= 0:
            raise ConfigError(f"comm_range must be positive, got {self.comm_range}")
        if self.sigma < 0:
            raise ConfigError(f"sigma must be non-negative, got {self.sigma}")
        if self.e_base < 0 or self.e_tx < 0:
            raise ConfigError("radio-model constants must be non-negative")

    def sample(self, base_distances: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        n = np.asarray(base_distances).shape[0]
        if len(self.coords) != n:
            raise NetworkModelError(
                f"RoutingCycleDistribution: have {len(self.coords)} coords for n={n}")
        gen = make_rng(rng)
        pts = np.asarray(list(self.coords) + [self.base_position], dtype=np.float64)
        graph = CommunicationGraph(coords=pts, comm_range=self.comm_range)
        tree = RoutingTree.shortest_path(graph, metric="hops")
        load = relay_loads(tree)
        rate = self.e_base + self.e_tx * load
        raw = 1.0 / rate  # battery=1; heavier relays -> shorter cycles
        raw = np.where(tree.connected_mask(), raw, raw.min())
        # Rescale monotonically into [tau_min, tau_max].
        lo, hi = float(raw.min()), float(raw.max())
        if hi > lo:
            scaled = self.tau_min + (self.tau_max - self.tau_min) * (raw - lo) / (hi - lo)
        else:
            scaled = np.full_like(raw, self.tau_max)
        if self.sigma > 0:
            scaled = scaled + gen.uniform(-self.sigma, self.sigma, size=n)
        return np.maximum(scaled, self.tau_min)
