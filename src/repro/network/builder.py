"""Network construction: fluent builder and one-call paper defaults."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point, points_to_array
from repro.geometry.rng import make_rng
from repro.network.cycles import CycleDistribution, LinearCycleDistribution
from repro.network.deployment import (
    deploy_clustered,
    deploy_grid,
    deploy_sensors,
    place_depots,
)
from repro.network.depot import BaseStation, Depot
from repro.network.model import SensorNetwork
from repro.network.sensor import Sensor

__all__ = ["NetworkBuilder", "build_paper_network"]


@dataclass
class NetworkBuilder:
    """Step-by-step construction of a :class:`SensorNetwork`.

    Example
    -------
    >>> net = (NetworkBuilder()
    ...        .with_area(Rect.square(1000.0))
    ...        .with_random_sensors(200, seed=7)
    ...        .with_base_station_at_center()
    ...        .with_random_depots(5, seed=7)
    ...        .with_cycles_from(LinearCycleDistribution(), seed=7)
    ...        .build())
    >>> net.n, net.q
    (200, 5)
    """

    area: Rect = field(default_factory=lambda: Rect.square(1000.0))
    _sensor_positions: list[Point] = field(default_factory=list)
    _depots: list[Depot] = field(default_factory=list)
    _base: BaseStation | None = None
    _cycles: np.ndarray | None = None
    _batteries: np.ndarray | float = 1.0

    # ------------------------------------------------------------------ area
    def with_area(self, area: Rect) -> "NetworkBuilder":
        """Set the deployment rectangle (before placing anything)."""
        self.area = area
        return self

    # --------------------------------------------------------------- sensors
    def with_sensors_at(self, positions: list[Point]) -> "NetworkBuilder":
        """Place sensors at explicit positions."""
        self._sensor_positions = list(positions)
        return self

    def with_random_sensors(self, n: int,
                            seed: int | np.random.Generator | None = None
                            ) -> "NetworkBuilder":
        """Place ``n`` sensors uniformly at random in the area."""
        self._sensor_positions = deploy_sensors(n, self.area, make_rng(seed))
        return self

    # ---------------------------------------------------------- base station
    def with_base_station_at(self, position: Point) -> "NetworkBuilder":
        self._base = BaseStation(position=position)
        return self

    def with_base_station_at_center(self) -> "NetworkBuilder":
        """The paper's choice: sink at the centre of the area."""
        self._base = BaseStation(position=self.area.center)
        return self

    # ---------------------------------------------------------------- depots
    def with_depots_at(self, positions: list[Point]) -> "NetworkBuilder":
        self._depots = [Depot(id=i, position=p) for i, p in enumerate(positions)]
        return self

    def with_random_depots(self, q: int,
                           seed: int | np.random.Generator | None = None,
                           *, colocate_first: bool = True) -> "NetworkBuilder":
        """Place ``q`` depots; by default depot 0 sits on the base station."""
        if self._base is None:
            self.with_base_station_at_center()
        assert self._base is not None
        self._depots = place_depots(q, self.area, self._base, make_rng(seed),
                                    colocate_first=colocate_first)
        return self

    # ---------------------------------------------------------------- cycles
    def with_cycles(self, cycles) -> "NetworkBuilder":
        """Set explicit maximum charging cycles (one per sensor)."""
        self._cycles = np.asarray(cycles, dtype=np.float64)
        return self

    def with_cycles_from(self, distribution: CycleDistribution,
                         seed: int | np.random.Generator | None = None
                         ) -> "NetworkBuilder":
        """Sample cycles from a distribution over the current geometry."""
        if not self._sensor_positions:
            raise NetworkModelError("with_cycles_from: place sensors first")
        if self._base is None:
            self.with_base_station_at_center()
        assert self._base is not None
        coords = points_to_array(self._sensor_positions)
        bs = np.asarray(self._base.position.as_tuple())
        d = np.sqrt(((coords - bs) ** 2).sum(axis=1))
        self._cycles = distribution.sample(d, make_rng(seed))
        return self

    def with_batteries(self, batteries) -> "NetworkBuilder":
        """Set battery capacities (scalar or per-sensor)."""
        self._batteries = (float(batteries) if np.isscalar(batteries)
                           else np.asarray(batteries, dtype=np.float64))
        return self

    # ----------------------------------------------------------------- build
    def build(self) -> SensorNetwork:
        """Assemble and validate the network."""
        if not self._sensor_positions:
            raise NetworkModelError("NetworkBuilder: no sensors placed")
        if not self._depots:
            raise NetworkModelError("NetworkBuilder: no depots placed")
        if self._base is None:
            self.with_base_station_at_center()
        assert self._base is not None
        n = len(self._sensor_positions)
        if self._cycles is None:
            raise NetworkModelError("NetworkBuilder: no cycles set")
        if self._cycles.shape != (n,):
            raise NetworkModelError(
                f"NetworkBuilder: {self._cycles.shape[0]} cycles for {n} sensors")
        batteries = np.broadcast_to(np.asarray(self._batteries, dtype=np.float64), (n,))
        sensors = tuple(
            Sensor(id=i, position=p, cycle=float(c), battery=float(b))
            for i, (p, c, b) in enumerate(
                zip(self._sensor_positions, self._cycles, batteries))
        )
        return SensorNetwork(sensors=sensors, depots=tuple(self._depots),
                             base_station=self._base, area=self.area)


def build_paper_network(n: int = 200, q: int = 5,
                        distribution: CycleDistribution | None = None,
                        seed: int | np.random.Generator | None = None,
                        *, side: float = 1000.0,
                        deployment: str = "uniform") -> SensorNetwork:
    """One random topology with the paper's Section VII defaults.

    ``n`` sensors in a ``side x side`` square, base station at the centre,
    ``q`` depots with depot 0 on the base station, cycles from
    ``distribution`` (linear with ``tau = [1, 50], sigma = 2`` when omitted).
    A single ``seed`` drives deployment, depots and cycles through spawned
    independent substreams, so one integer reproduces the whole topology.

    Parameters
    ----------
    deployment:
        ``"uniform"`` (the paper's), ``"clustered"`` (Gaussian hotspots) or
        ``"grid"`` (jittered lattice) — see :mod:`repro.network.deployment`.
    """
    rng = make_rng(seed)
    sub = rng.spawn(3) if hasattr(rng, "spawn") else [rng, rng, rng]
    dist = distribution if distribution is not None else LinearCycleDistribution()
    area = Rect.square(side)
    if deployment == "uniform":
        positions = deploy_sensors(n, area, sub[0])
    elif deployment == "clustered":
        positions = deploy_clustered(n, area, rng=sub[0])
    elif deployment == "grid":
        positions = deploy_grid(n, area, jitter=0.25, rng=sub[0])
    else:
        raise NetworkModelError(
            f"unknown deployment {deployment!r}; "
            f"use 'uniform', 'clustered' or 'grid'")
    return (NetworkBuilder()
            .with_area(area)
            .with_sensors_at(positions)
            .with_base_station_at_center()
            .with_random_depots(q, sub[1])
            .with_cycles_from(dist, sub[2])
            .build())
