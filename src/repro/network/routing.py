"""Multihop-routing substrate: unit-disk graphs and relay loads.

The paper motivates its *linear* cycle distribution physically: sensors near
the base station relay everyone else's traffic, drain faster, and therefore
have shorter maximum charging cycles. This module builds that story from
first principles so the library can *derive* cycles from a routing model
rather than only postulating them:

1. :class:`CommunicationGraph` — the unit-disk graph over sensors + base
   station (an edge wherever two nodes are within communication range).
2. :class:`RoutingTree` — a shortest-path tree (Dijkstra on hop-count or
   distance) towards the base station, i.e. the canonical data-gathering
   tree.
3. :func:`relay_loads` — packets per round each sensor forwards (its own
   plus all descendants'), from which an energy rate and hence a cycle
   follows via a simple first-order radio model.

Used by :class:`repro.network.cycles.RoutingCycleDistribution` and the
``examples/routing_energy_model.py`` walkthrough.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NetworkModelError
from repro.geometry.distance import distance_matrix
from repro.obs.instrument import Instrumentation, ensure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.network.model import SensorNetwork

__all__ = ["CommunicationGraph", "RoutingTree", "relay_loads", "n_matrix_builds"]

#: How many dense distance matrices this module computed from raw
#: coordinates since import (never decremented). ``from_network`` does not
#: touch it — the difference against ``routing.dist_matrix_reused`` proves
#: the pairwise computation happens once per network.
_MATRIX_BUILDS = 0


def n_matrix_builds() -> int:
    """Module-wide count of from-scratch distance-matrix computations."""
    return _MATRIX_BUILDS

#: Node index of the base station inside a CommunicationGraph: it is always
#: appended after the n sensors.
_BS_OFFSET = 0


@dataclass(frozen=True)
class CommunicationGraph:
    """Unit-disk communication graph over ``n`` sensors and the base station.

    Node indexing: sensors ``0..n-1``, base station ``n``.

    Parameters
    ----------
    coords:
        ``(n+1, 2)`` coordinates, sensors first, base station last.
    comm_range:
        Maximum link length in metres; pairs farther apart have no edge.
    """

    coords: np.ndarray
    comm_range: float

    def __post_init__(self) -> None:
        c = np.asarray(self.coords, dtype=np.float64)
        if c.ndim != 2 or c.shape[1] != 2 or c.shape[0] < 2:
            raise NetworkModelError(
                f"CommunicationGraph: expected (n+1, 2) coords with n>=1, got {c.shape}")
        if self.comm_range <= 0:
            raise NetworkModelError(
                f"CommunicationGraph: comm_range must be positive, got {self.comm_range}")
        object.__setattr__(self, "coords", c)

    @property
    def n_sensors(self) -> int:
        return self.coords.shape[0] - 1

    @property
    def base_index(self) -> int:
        """Graph index of the base station (always the last node)."""
        return self.coords.shape[0] - 1

    @cached_property
    def dist(self) -> np.ndarray:
        """Dense distances with out-of-range pairs set to ``inf``."""
        global _MATRIX_BUILDS
        _MATRIX_BUILDS += 1
        d = distance_matrix(self.coords)
        return self._mask(d)

    def _mask(self, d: np.ndarray) -> np.ndarray:
        d[d > self.comm_range] = np.inf
        np.fill_diagonal(d, 0.0)
        d.setflags(write=False)
        return d

    @classmethod
    def from_network(cls, network: "SensorNetwork", *, comm_range: float,
                     obs: Instrumentation | None = None) -> "CommunicationGraph":
        """Build the graph over a network's sensors and base station,
        reusing the network's cached pairwise distances.

        :attr:`SensorNetwork.dist` already holds every sensor-sensor
        distance and :attr:`SensorNetwork.base_distances` every
        sensor-to-base one, so nothing is recomputed here — the cached
        blocks are assembled into the ``(n+1, n+1)`` masked matrix and
        seeded straight into this graph's ``dist`` cache. ``obs`` counts
        the reuse (``routing.dist_matrix_reused``); together with
        :func:`n_matrix_builds` staying flat it proves the pairwise
        computation happens once per network.
        """
        o = ensure(obs)
        n = network.n
        base = np.asarray(network.base_station.position.as_tuple(),
                          dtype=np.float64)
        coords = np.vstack([network.coordinates[:n], base[None, :]])
        g = cls(coords=coords, comm_range=comm_range)
        d = np.empty((n + 1, n + 1), dtype=np.float64)
        d[:n, :n] = network.dist[:n, :n]
        d[:n, n] = network.base_distances
        d[n, :n] = network.base_distances
        d[n, n] = 0.0
        g.__dict__["dist"] = g._mask(d)  # seed the cached_property
        o.incr("routing.dist_matrix_reused")
        return g

    def is_connected(self) -> bool:
        """Whether every sensor can reach the base station (BFS)."""
        reach = self._reachable_from_base()
        return bool(reach.all())

    def _reachable_from_base(self) -> np.ndarray:
        n_tot = self.coords.shape[0]
        adj = np.isfinite(self.dist) & ~np.eye(n_tot, dtype=bool)
        seen = np.zeros(n_tot, dtype=bool)
        frontier = [self.base_index]
        seen[self.base_index] = True
        while frontier:
            u = frontier.pop()
            nbrs = np.nonzero(adj[u] & ~seen)[0]
            seen[nbrs] = True
            frontier.extend(int(v) for v in nbrs)
        return seen


@dataclass(frozen=True)
class RoutingTree:
    """Shortest-path data-gathering tree rooted at the base station.

    Parameters
    ----------
    parent:
        ``(n,)`` array; ``parent[i]`` is the next hop of sensor ``i``
        (a sensor index, or the base-station index). ``-1`` marks a sensor
        disconnected from the sink.
    cost:
        ``(n,)`` shortest-path cost from each sensor to the base station
        (``inf`` if disconnected).
    base_index:
        The sink's node index (``n``).
    """

    parent: np.ndarray
    cost: np.ndarray
    base_index: int

    @property
    def n_sensors(self) -> int:
        return self.parent.shape[0]

    def connected_mask(self) -> np.ndarray:
        """Boolean mask of sensors with a route to the sink."""
        return self.parent >= 0

    def hops_of(self, i: int) -> int:
        """Hop count from sensor ``i`` to the base station.

        Raises :class:`NetworkModelError` for disconnected sensors.
        """
        if self.parent[i] < 0:
            raise NetworkModelError(f"sensor {i} has no route to the base station")
        hops = 0
        node = i
        while node != self.base_index:
            node = int(self.parent[node])
            hops += 1
            if hops > self.n_sensors + 1:
                raise NetworkModelError("routing tree contains a cycle")
        return hops

    @classmethod
    def shortest_path(cls, graph: CommunicationGraph,
                      *, metric: str = "distance") -> "RoutingTree":
        """Dijkstra from the base station over the communication graph.

        Parameters
        ----------
        graph:
            The unit-disk graph.
        metric:
            ``"distance"`` minimises total metres (energy-proportional under
            a linear radio model); ``"hops"`` minimises hop count (classic
            minimum-hop routing). Ties broken by node index for determinism.
        """
        if metric not in ("distance", "hops"):
            raise NetworkModelError(f"unknown routing metric {metric!r}")
        d = graph.dist
        n_tot = d.shape[0]
        bs = graph.base_index
        weight = d if metric == "distance" else np.where(np.isfinite(d), 1.0, np.inf)

        cost = np.full(n_tot, np.inf)
        parent = np.full(n_tot, -1, dtype=np.intp)
        cost[bs] = 0.0
        done = np.zeros(n_tot, dtype=bool)
        heap: list[tuple[float, int]] = [(0.0, bs)]
        while heap:
            cu, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            row = weight[u]
            for v in range(n_tot):
                if done[v] or not np.isfinite(row[v]) or v == u:
                    continue
                nc = cu + row[v]
                if nc < cost[v] - 1e-15:
                    cost[v] = nc
                    parent[v] = u
                    heapq.heappush(heap, (nc, v))
        return cls(parent=parent[: graph.n_sensors].copy(),
                   cost=cost[: graph.n_sensors].copy(), base_index=bs)


def relay_loads(tree: RoutingTree, generation: np.ndarray | float = 1.0) -> np.ndarray:
    """Traffic each sensor transmits per round under ``tree``.

    Sensor ``i`` transmits its own generated packets plus everything its
    subtree generates. Computed by accumulating along parent pointers in
    decreasing-cost order (children are strictly farther from the sink than
    their parents in a shortest-path tree, so one sorted pass suffices).

    Parameters
    ----------
    tree:
        Routing tree; disconnected sensors get load 0.
    generation:
        Per-sensor packet generation per round (scalar or ``(n,)``).

    Returns
    -------
    numpy.ndarray
        ``(n,)`` transmitted load per sensor.
    """
    n = tree.n_sensors
    gen = np.broadcast_to(np.asarray(generation, dtype=np.float64), (n,)).copy()
    load = np.where(tree.connected_mask(), gen, 0.0)
    order = np.argsort(-np.where(np.isfinite(tree.cost), tree.cost, -np.inf))
    for i in order:
        p = int(tree.parent[i])
        if p >= 0 and p != tree.base_index:
            load[p] += load[i]
    return load
