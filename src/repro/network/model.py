"""The :class:`SensorNetwork` instance type.

A ``SensorNetwork`` is the concrete realisation of the paper's weighted
complete graph ``G = (V ∪ R, E; w)``: ``n`` sensors, ``q`` depots, a base
station, and Euclidean edge weights. The node indexing convention used by
every algorithm in this library is:

* indices ``0 .. n-1``   — sensors (``sensor.id`` equals its index),
* indices ``n .. n+q-1`` — depots (depot ``l`` at index ``n + l``).

The full ``(n+q, n+q)`` distance matrix is computed once and cached; all
subproblems (induced subgraphs over to-be-charged sets) are expressed as
index arrays into it, so no distances are ever recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.geometry.distance import distance_matrix
from repro.geometry.point import points_to_array
from repro.network.depot import BaseStation, Depot
from repro.network.sensor import Sensor

__all__ = ["SensorNetwork"]


@dataclass(frozen=True)
class SensorNetwork:
    """An immutable WSN instance.

    Parameters
    ----------
    sensors:
        The sensors; ``sensors[i].id`` must equal ``i``.
    depots:
        The charger depots; ``depots[l].id`` must equal ``l``. At least one.
    base_station:
        The data sink (used by cycle distributions and the routing model).
    area:
        The deployment rectangle, kept for provenance and examples.
    """

    sensors: tuple[Sensor, ...]
    depots: tuple[Depot, ...]
    base_station: BaseStation
    area: Rect = field(default_factory=lambda: Rect.square(1000.0))

    def __post_init__(self) -> None:
        if not self.sensors:
            raise NetworkModelError("SensorNetwork: need at least one sensor")
        if not self.depots:
            raise NetworkModelError("SensorNetwork: need at least one depot")
        for i, s in enumerate(self.sensors):
            if s.id != i:
                raise NetworkModelError(
                    f"SensorNetwork: sensors[{i}] has id {s.id}; ids must be 0..n-1 in order")
        for l, d in enumerate(self.depots):
            if d.id != l:
                raise NetworkModelError(
                    f"SensorNetwork: depots[{l}] has id {d.id}; ids must be 0..q-1 in order")

    # ------------------------------------------------------------------ sizes
    @property
    def n(self) -> int:
        """Number of sensors."""
        return len(self.sensors)

    @property
    def q(self) -> int:
        """Number of depots (= number of mobile chargers)."""
        return len(self.depots)

    @property
    def n_nodes(self) -> int:
        """Total node count ``n + q`` of the metric graph."""
        return self.n + self.q

    # ------------------------------------------------------------ index maps
    def depot_index(self, l: int) -> int:
        """Graph index of depot ``l`` (``n + l``)."""
        if not (0 <= l < self.q):
            raise NetworkModelError(f"depot_index: depot {l} out of range (q={self.q})")
        return self.n + l

    @property
    def depot_indices(self) -> np.ndarray:
        """Graph indices of all depots, ``[n, n+1, ..., n+q-1]``."""
        return np.arange(self.n, self.n + self.q, dtype=np.intp)

    @property
    def sensor_indices(self) -> np.ndarray:
        """Graph indices of all sensors, ``[0, ..., n-1]``."""
        return np.arange(self.n, dtype=np.intp)

    def is_depot(self, node: int) -> bool:
        """Whether graph index ``node`` refers to a depot."""
        return self.n <= node < self.n_nodes

    def membership_mask(self, offline: Iterable[int] = ()) -> np.ndarray:
        """``(n,)`` boolean alive/offline mask over the sensors.

        The network itself is immutable — the static-vs-dynamic contract
        is that membership is an *overlay*: geometry, distances and
        batteries never change mid-run, while the simulator
        (:class:`~repro.sim.state.EnergyState`) flips this mask as churn
        events fire. This helper materialises the overlay's initial value:
        all sensors online except the given ``offline`` ids.
        """
        mask = np.ones(self.n, dtype=bool)
        for s in offline:
            i = int(s)
            if not 0 <= i < self.n:
                raise NetworkModelError(
                    f"membership_mask: sensor {i} out of range 0..{self.n - 1}")
            mask[i] = False
        return mask

    # ------------------------------------------------------------- geometry
    @cached_property
    def coordinates(self) -> np.ndarray:
        """``(n+q, 2)`` coordinates, sensors first then depots."""
        pts = [s.position for s in self.sensors] + [d.position for d in self.depots]
        return points_to_array(pts)

    @cached_property
    def dist(self) -> np.ndarray:
        """Cached dense ``(n+q, n+q)`` Euclidean distance matrix (read-only)."""
        d = distance_matrix(self.coordinates)
        d.setflags(write=False)
        return d

    @cached_property
    def geometry_fingerprint(self) -> str:
        """Content hash of the metric geometry (coordinates + node roles).

        Two networks share a fingerprint iff they have the same sensor and
        depot positions in the same order — i.e. iff every q-rooted
        subproblem over a given sensor set has the same answer. Cycles,
        batteries and rates are deliberately *excluded*: tours depend on
        them only through the coverage set, which the plan-artifact cache
        keys separately (see :mod:`repro.plan.cache`).
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"geom|n={self.n}|q={self.q}|".encode())
        h.update(np.ascontiguousarray(self.coordinates, dtype=np.float64).tobytes())
        return h.hexdigest()

    @cached_property
    def base_distances(self) -> np.ndarray:
        """``(n,)`` distances from each sensor to the base station."""
        bs = np.asarray(self.base_station.position.as_tuple(), dtype=np.float64)
        diff = self.coordinates[: self.n] - bs
        return np.sqrt((diff * diff).sum(axis=1))

    # ---------------------------------------------------------------- cycles
    @cached_property
    def cycles(self) -> np.ndarray:
        """``(n,)`` array of nominal maximum charging cycles ``tau_i``."""
        arr = np.asarray([s.cycle for s in self.sensors], dtype=np.float64)
        arr.setflags(write=False)
        return arr

    @cached_property
    def batteries(self) -> np.ndarray:
        """``(n,)`` array of battery capacities ``B_i``."""
        arr = np.asarray([s.battery for s in self.sensors], dtype=np.float64)
        arr.setflags(write=False)
        return arr

    @cached_property
    def rates(self) -> np.ndarray:
        """``(n,)`` nominal energy-consumption rates ``rho_i = B_i / tau_i``."""
        arr = self.batteries / self.cycles
        arr.setflags(write=False)
        return arr

    @property
    def tau_min(self) -> float:
        """Smallest maximum charging cycle in the network."""
        return float(self.cycles.min())

    @property
    def tau_max(self) -> float:
        """Largest maximum charging cycle in the network."""
        return float(self.cycles.max())

    # ------------------------------------------------------------- mutation
    def with_cycles(self, cycles: Sequence[float] | np.ndarray) -> "SensorNetwork":
        """Copy of the network with sensor cycles replaced.

        Geometry (and therefore the cached distance matrix of the *new*
        object) is unchanged; used when a workload redraws cycles.
        """
        arr = np.asarray(cycles, dtype=np.float64)
        if arr.shape != (self.n,):
            raise NetworkModelError(
                f"with_cycles: expected {self.n} cycles, got shape {arr.shape}")
        sensors = tuple(s.with_cycle(float(c)) for s, c in zip(self.sensors, arr))
        return SensorNetwork(sensors=sensors, depots=self.depots,
                             base_station=self.base_station, area=self.area)

    def induced_nodes(self, sensor_ids: Iterable[int],
                      *, include_depots: bool = True) -> np.ndarray:
        """Graph-index array for the induced subproblem over ``sensor_ids``.

        The q-rooted algorithms operate on induced subgraphs
        ``G[V^c ∪ R]``; this helper produces the (sorted, de-duplicated)
        index set with depots appended, ready to slice :attr:`dist`.
        """
        ids = np.unique(np.fromiter(sensor_ids, dtype=np.intp))
        if ids.size and (ids[0] < 0 or ids[-1] >= self.n):
            raise NetworkModelError(
                f"induced_nodes: sensor ids out of range 0..{self.n - 1}")
        if include_depots:
            return np.concatenate([ids, self.depot_indices])
        return ids
