"""Wireless-sensor-network model: sensors, depots, deployments, cycles.

This package is the paper's Section III ("Preliminaries") made concrete:

* :class:`~repro.network.sensor.Sensor` / :class:`~repro.network.depot.Depot`
  / :class:`~repro.network.depot.BaseStation` — the node types.
* :class:`~repro.network.model.SensorNetwork` — an immutable network
  instance exposing the complete metric graph ``G = (V ∪ R, E; w)`` as a
  dense distance matrix with the convention *sensors first, depots after*.
* :mod:`~repro.network.deployment` — uniform random deployment in the
  1000 m x 1000 m area, one depot co-located with the central base station.
* :mod:`~repro.network.cycles` — the two charging-cycle distributions of
  Section VII (linear-in-distance and uniform-random), plus a
  routing-derived distribution built on :mod:`~repro.network.routing`.
* :mod:`~repro.network.routing` — unit-disk communication graph and
  shortest-path-tree relay loads, the physical story behind the linear
  distribution ("sensors near the base station relay more and drain faster").
* :mod:`~repro.network.builder` — fluent builder + one-call constructors
  used by examples, tests and the experiment runner.
"""

from repro.network.builder import NetworkBuilder, build_paper_network
from repro.network.cycles import (
    CycleDistribution,
    ExplicitCycles,
    LinearCycleDistribution,
    RandomCycleDistribution,
    RoutingCycleDistribution,
)
from repro.network.deployment import deploy_sensors, place_depots
from repro.network.depot import BaseStation, Depot
from repro.network.energy import EnergyProfile, cycles_from_rates, rates_from_cycles
from repro.network.model import SensorNetwork
from repro.network.routing import CommunicationGraph, RoutingTree, relay_loads
from repro.network.sensor import Sensor

__all__ = [
    "BaseStation",
    "CommunicationGraph",
    "CycleDistribution",
    "Depot",
    "EnergyProfile",
    "ExplicitCycles",
    "LinearCycleDistribution",
    "NetworkBuilder",
    "RandomCycleDistribution",
    "RoutingCycleDistribution",
    "RoutingTree",
    "Sensor",
    "SensorNetwork",
    "build_paper_network",
    "cycles_from_rates",
    "deploy_sensors",
    "place_depots",
    "rates_from_cycles",
    "relay_loads",
]
