"""Conversions between batteries, consumption rates and charging cycles.

The paper's quantities are linked by ``tau_i = B_i / rho_i``: a sensor with
battery ``B_i`` draining at rate ``rho_i`` survives exactly ``tau_i`` after
a full charge. These helpers keep the conversion in one vectorised place and
define :class:`EnergyProfile`, the bundle the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkModelError

__all__ = ["rates_from_cycles", "cycles_from_rates", "EnergyProfile"]


def rates_from_cycles(cycles: np.ndarray, batteries: np.ndarray | float = 1.0) -> np.ndarray:
    """Element-wise ``rho = B / tau``.

    Raises
    ------
    NetworkModelError
        On non-positive cycles (a zero cycle would mean an infinite rate).
    """
    tau = np.asarray(cycles, dtype=np.float64)
    if np.any(tau <= 0) or not np.all(np.isfinite(tau)):
        raise NetworkModelError("rates_from_cycles: cycles must be positive and finite")
    return np.broadcast_to(np.asarray(batteries, dtype=np.float64), tau.shape) / tau


def cycles_from_rates(rates: np.ndarray, batteries: np.ndarray | float = 1.0) -> np.ndarray:
    """Element-wise ``tau = B / rho``."""
    rho = np.asarray(rates, dtype=np.float64)
    if np.any(rho <= 0) or not np.all(np.isfinite(rho)):
        raise NetworkModelError("cycles_from_rates: rates must be positive and finite")
    return np.broadcast_to(np.asarray(batteries, dtype=np.float64), rho.shape) / rho


@dataclass(frozen=True)
class EnergyProfile:
    """Per-sensor energy parameters as parallel arrays.

    Parameters
    ----------
    batteries:
        ``(n,)`` battery capacities ``B_i``.
    cycles:
        ``(n,)`` maximum charging cycles ``tau_i``.

    The derived ``rates`` property gives ``rho_i``. Immutable; workloads that
    vary rates produce per-slot rate arrays instead of mutating this.
    """

    batteries: np.ndarray
    cycles: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.batteries, dtype=np.float64)
        c = np.asarray(self.cycles, dtype=np.float64)
        if b.shape != c.shape or b.ndim != 1:
            raise NetworkModelError(
                f"EnergyProfile: shape mismatch {b.shape} vs {c.shape}")
        if np.any(b <= 0) or np.any(c <= 0):
            raise NetworkModelError("EnergyProfile: batteries and cycles must be positive")
        object.__setattr__(self, "batteries", b)
        object.__setattr__(self, "cycles", c)

    @property
    def n(self) -> int:
        return self.batteries.shape[0]

    @property
    def rates(self) -> np.ndarray:
        """``(n,)`` consumption rates ``rho_i = B_i / tau_i``."""
        return self.batteries / self.cycles
