"""Sensor nodes.

A sensor in the paper is characterised by its location, its battery capacity
``B_i`` and its maximum charging cycle ``tau_i = B_i / rho_i`` (``rho_i``
being its energy-consumption rate). The experiments parameterise sensors by
``tau_i`` directly, so :class:`Sensor` stores the cycle and derives the rate;
:mod:`repro.network.energy` converts in both directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import NetworkModelError
from repro.geometry.point import Point

__all__ = ["Sensor"]

#: Battery capacity used when none is specified. The paper never fixes an
#: absolute capacity because only the *cycle* tau_i = B_i / rho_i enters the
#: optimisation; a unit battery makes rate and 1/cycle numerically equal.
DEFAULT_BATTERY = 1.0


@dataclass(frozen=True, slots=True)
class Sensor:
    """One rechargeable sensor node.

    Parameters
    ----------
    id:
        Index of the sensor, ``0..n-1``, unique within a network and equal
        to its row in the network's distance matrix.
    position:
        Deployment location.
    cycle:
        Maximum charging cycle ``tau_i`` — the longest time the sensor can
        run on a full battery. Must be positive and finite.
    battery:
        Battery capacity ``B_i`` (energy units). Defaults to 1.
    """

    id: int
    position: Point
    cycle: float
    battery: float = DEFAULT_BATTERY

    def __post_init__(self) -> None:
        if self.id < 0:
            raise NetworkModelError(f"sensor id must be non-negative, got {self.id}")
        if not (math.isfinite(self.cycle) and self.cycle > 0):
            raise NetworkModelError(
                f"sensor {self.id}: cycle must be positive and finite, got {self.cycle}")
        if not (math.isfinite(self.battery) and self.battery > 0):
            raise NetworkModelError(
                f"sensor {self.id}: battery must be positive and finite, got {self.battery}")

    @property
    def rate(self) -> float:
        """Nominal energy-consumption rate ``rho_i = B_i / tau_i``."""
        return self.battery / self.cycle

    def with_cycle(self, cycle: float) -> "Sensor":
        """Copy of this sensor with a different maximum charging cycle.

        Used by variable-cycle workloads, which redraw cycles per time slot.
        """
        return Sensor(id=self.id, position=self.position, cycle=cycle,
                      battery=self.battery)

    def lifetime_from(self, energy: float) -> float:
        """Residual lifetime when holding ``energy`` units and draining at
        the nominal rate."""
        if energy <= 0:
            return 0.0
        return energy / self.rate
