"""The staged planner pipeline.

Algorithm 3 decomposes into five stages with clean artifact boundaries::

    quantize ──► coverage sets ──► q-rooted forest ──► tour construction ──► 2-opt refine
    (stage 1)      (stage 2)          (stage 3)            (stage 4)        (stage 5, opt.)

* **quantize** — :func:`repro.core.quantize.quantize_cycles`: cycles to
  power-of-``b`` classes. Depends on (cycles, base) only.
* **coverage sets** — :meth:`repro.core.quantize.Quantization.coverage_sets`:
  the frozen sensor set each within-block scheduling must charge. Depends
  on the quantisation only.
* **q-rooted forest** — :func:`repro.rooted.msf.q_rooted_msf` (Algorithm 1)
  over one coverage set. Depends on (geometry, coverage set) only.
* **tour construction** — :func:`repro.tsp.construct.tours_from_forest`
  (Algorithm 2's double/Euler/shortcut walk). Depends on the forest only.
* **refine** — :func:`repro.rooted.refine.refine_tours` (optional 2-opt
  post-pass). Depends on (geometry, base tours) only.

Because stages 3–5 are pure in ``(geometry fingerprint, coverage set,
refine flag)``, their artifacts memoize perfectly: :func:`plan_tours` is
the cached stage-3..5 runner every planner goes through, backed by a
:class:`~repro.plan.cache.PlanArtifactCache`. With ``cache=None`` it
degrades to exactly the uncached Algorithm 2 call — same tours, same
instrumentation — so the cache is a pure accelerator, never a semantic
switch (``tests/property/test_prop_plan_cache.py`` holds it to that).

Cache instrumentation (all under the enabled context only):

========================== =================================================
``plan.cache.tours.hit``   final tour set served from cache (no work at all)
``plan.cache.tours.miss``  final tour set had to be (partially) built
``plan.cache.base.hit``    refine requested, base tours reused (2-opt only)
``plan.cache.base.miss``   refine requested, base tours absent too
``plan.cache.forest.hit``  MSF reused, only the tree walk re-ran
``plan.cache.forest.miss`` full Algorithm 1 + 2 run
========================== =================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.quantize import Quantization
from repro.kernels import KernelBackend, resolve
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.plan.cache import PlanArtifactCache
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp
from repro.rooted.refine import refine_tours
from repro.tsp.construct import tours_from_forest
from repro.tsp.tour import Tour

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.store import PlanArtifactStore

__all__ = ["plan_tours", "build_levels", "build_block", "distinct_coverage",
           "cache_fingerprint"]


def cache_fingerprint(network: SensorNetwork,
                      backend: KernelBackend) -> str:
    """The artifact-cache fingerprint for plans built with ``backend``.

    Exact backends are guaranteed output-identical to the reference, so
    they *share* cache entries — switching ``--kernel-backend`` between
    ``reference`` and ``fast`` neither misses nor pollutes. A non-exact
    backend's outputs may legitimately differ, so its name is folded into
    the fingerprint, giving it a private cache namespace.
    """
    fp = network.geometry_fingerprint
    return fp if backend.exact else f"{fp}|kernel={backend.name}"


def distinct_coverage(quant: Quantization) -> tuple[frozenset[int], ...]:
    """The block's distinct coverage sets, in first-appearance order.

    A ``2^K`` block contains at most ``K + 1`` distinct sets (one per
    coverage level; see :meth:`~repro.core.quantize.Quantization.level_of`);
    this is the work list stage 3 actually has to solve. Consecutive levels
    whose class is empty share a set, hence the dedup.
    """
    seen: dict[frozenset[int], None] = {}
    for cov in quant.coverage_sets():
        seen.setdefault(cov, None)
    return tuple(seen)


def plan_tours(network: SensorNetwork, coverage: frozenset[int],
               *, refine: bool = False,
               cache: PlanArtifactCache | None = None,
               store: "PlanArtifactStore | None" = None,
               kernel_backend: "str | KernelBackend | None" = None,
               obs: Instrumentation | None = None) -> tuple[Tour, ...]:
    """Stages 3–5 for one coverage set, with artifact reuse.

    Parameters
    ----------
    network:
        The WSN instance; supplies geometry, depots and the fingerprint.
    coverage:
        The frozen to-be-charged sensor set (graph = sensor indices).
    refine:
        Apply the 2-opt post-pass (stage 5).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache` (tier 1,
        in-memory). ``None`` (the default) runs Algorithm 2 directly —
        output is tour-for-tour identical either way, since the cached path
        is the same stage composition with memoized intermediates.
    store:
        Optional :class:`~repro.plan.store.PlanArtifactStore` (tier 2,
        on-disk). Consulted on a tier-1 miss — disk hits are promoted into
        ``cache`` — and written through on every compute, so artifacts
        survive process restarts. Like the cache, a pure accelerator: plans
        are tour-identical with or without it (the ``store`` differential
        check in :mod:`repro.check` holds it to that).
    kernel_backend:
        Kernel backend (:mod:`repro.kernels`) for the numeric hot paths of
        stages 3 and 5; ``None`` resolves via the process default /
        ``REPRO_KERNEL_BACKEND``. Non-exact backends get a private cache
        namespace (see :func:`cache_fingerprint`).
    obs:
        Optional instrumentation; the cached path records the
        ``plan.cache.*`` hit/miss counters documented in the module
        docstring (tier 2 adds ``plan.cache.disk.*``), and forwards to the
        stage implementations it runs.

    Returns
    -------
    tuple[Tour, ...]
        One tour per depot, jointly covering ``coverage``.
    """
    depots = [int(i) for i in network.depot_indices]
    kb = resolve(kernel_backend)
    if cache is None and store is None:
        return tuple(q_rooted_tsp(network.dist, sorted(coverage), depots,
                                  refine=refine, backend=kb, obs=obs))

    o = ensure(obs)
    fp = cache_fingerprint(network, kb)

    def lookup_tours(want_refine: bool) -> tuple[Tour, ...] | None:
        """Tier-1 then tier-2 lookup; promotes disk hits into memory."""
        if cache is not None:
            hit = cache.get_tours(fp, coverage, want_refine)
            if hit is not None:
                return hit
        if store is not None:
            hit = store.get_tours(fp, coverage, want_refine, obs=obs)
            if hit is not None:
                if cache is not None:
                    cache.put_tours(fp, coverage, want_refine, hit)
                return hit
        return None

    def save_tours(want_refine: bool, tours: tuple[Tour, ...]) -> None:
        if cache is not None:
            cache.put_tours(fp, coverage, want_refine, tours)
        if store is not None:
            store.put_tours(fp, coverage, want_refine, tours, obs=obs)

    tours = lookup_tours(refine)
    if tours is not None:
        o.incr("plan.cache.tours.hit")
        return tours
    o.incr("plan.cache.tours.miss")

    base: tuple[Tour, ...] | None = None
    if refine:
        base = lookup_tours(False)
        o.incr("plan.cache.base.hit" if base is not None else "plan.cache.base.miss")
    if base is None:
        forest = cache.get_forest(fp, coverage) if cache is not None else None
        if forest is None and store is not None:
            forest = store.get_forest(fp, coverage, obs=obs)
            if forest is not None and cache is not None:
                cache.put_forest(fp, coverage, forest)
        if forest is None:
            o.incr("plan.cache.forest.miss")
            forest = q_rooted_msf(network.dist, sorted(coverage), depots,
                                  backend=kb, obs=obs)
            if cache is not None:
                cache.put_forest(fp, coverage, forest)
            if store is not None:
                store.put_forest(fp, coverage, forest, obs=obs)
        else:
            o.incr("plan.cache.forest.hit")
        base = tuple(tours_from_forest(forest))
        save_tours(False, base)
        if not refine:
            return base
    refined = tuple(refine_tours(network.dist, base, backend=kb, obs=obs))
    save_tours(True, refined)
    return refined


def build_levels(network: SensorNetwork, quant: Quantization,
                 *, refine: bool = False,
                 cache: PlanArtifactCache | None = None,
                 store: "PlanArtifactStore | None" = None,
                 kernel_backend: "str | KernelBackend | None" = None,
                 obs: Instrumentation | None = None) -> tuple[tuple[Tour, ...], ...]:
    """One tour set per coverage *level* (stages 2–5) — ``K + 1`` in total.

    Scheduling ``j`` covers the prefix union of classes up to
    :meth:`~repro.core.quantize.Quantization.level_of`; element ``v`` here
    is the tour set of every scheduling at level ``v``, so the whole block —
    all ``b^K`` schedulings — is ``levels[quant.level_of(j)]`` without ever
    materialising a per-scheduling structure. This is the planner's working
    representation; :func:`build_block` is the (guarded) expanded view.

    Levels whose class is empty share the previous level's coverage set and
    therefore the same tour tuple, by reference. ``obs`` counts the solve
    structure (``plan.block.solved`` / ``plan.block.reused``) and times the
    construction under the ``plan.block`` span; the ``plan.cache.*``
    counters (cached runs only) reveal how cheap each resolution was.
    """
    o = ensure(obs)
    kb = resolve(kernel_backend)
    resolved: dict[frozenset[int], tuple[Tour, ...]] = {}
    levels: list[tuple[Tour, ...]] = []
    with o.span("plan.block", levels=quant.K + 1):
        for cov in quant.coverage_sets():
            if cov not in resolved:
                resolved[cov] = plan_tours(network, cov, refine=refine,
                                           cache=cache, store=store,
                                           kernel_backend=kb, obs=obs)
                o.incr("plan.block.solved")
            else:
                o.incr("plan.block.reused")
            levels.append(resolved[cov])
    return tuple(levels)


def build_block(network: SensorNetwork, quant: Quantization,
                *, refine: bool = False,
                cache: PlanArtifactCache | None = None,
                store: "PlanArtifactStore | None" = None,
                kernel_backend: "str | KernelBackend | None" = None,
                obs: Instrumentation | None = None) -> tuple[tuple[Tour, ...], ...]:
    """The ``b^K`` tour sets of one scheduling block (stages 2–5), expanded.

    Scheduling ``j`` covers every class whose assigned cycle divides
    ``j * tau_1``; its tours come from :func:`plan_tours` on the frozen
    coverage set. Identical sensor sets across different ``j`` (any two
    ``j`` at the same coverage level) are resolved once and shared by
    reference. ``obs`` counts the within-block structure
    (``plan.block.solved`` / ``plan.block.reused``: one solve per distinct
    set, one reuse per repeat scheduling) and times the whole construction
    under the ``plan.block`` span; the ``plan.cache.*`` counters (cached
    runs only) reveal how cheap each resolution was.

    Raises :class:`~repro.errors.ScheduleError` when the block is too large
    to enumerate (see
    :meth:`~repro.core.quantize.Quantization.enumerable_block_size`);
    planners should prefer :func:`build_levels`, which is O(K) always.
    """
    o = ensure(obs)
    kb = resolve(kernel_backend)
    n = quant.enumerable_block_size()
    level_sets = quant.coverage_sets()
    resolved: dict[frozenset[int], tuple[Tour, ...]] = {}
    block: list[tuple[Tour, ...]] = []
    with o.span("plan.block", block_size=n):
        for j in range(1, n + 1):
            cov = level_sets[quant.level_of(j)]
            if cov not in resolved:
                resolved[cov] = plan_tours(network, cov, refine=refine,
                                           cache=cache, store=store,
                                           kernel_backend=kb, obs=obs)
                o.incr("plan.block.solved")
            else:
                o.incr("plan.block.reused")
            block.append(resolved[cov])
    return tuple(block)
