"""The staged planner pipeline.

Algorithm 3 decomposes into five stages with clean artifact boundaries::

    quantize ──► coverage sets ──► q-rooted forest ──► tour construction ──► 2-opt refine
    (stage 1)      (stage 2)          (stage 3)            (stage 4)        (stage 5, opt.)

* **quantize** — :func:`repro.core.quantize.quantize_cycles`: cycles to
  power-of-``b`` classes. Depends on (cycles, base) only.
* **coverage sets** — :meth:`repro.core.quantize.Quantization.coverage_sets`:
  the frozen sensor set each within-block scheduling must charge. Depends
  on the quantisation only.
* **q-rooted forest** — :func:`repro.rooted.msf.q_rooted_msf` (Algorithm 1)
  over one coverage set. Depends on (geometry, coverage set) only.
* **tour construction** — :func:`repro.tsp.construct.tours_from_forest`
  (Algorithm 2's double/Euler/shortcut walk). Depends on the forest only.
* **refine** — :func:`repro.rooted.refine.refine_tours` (optional 2-opt
  post-pass). Depends on (geometry, base tours) only.

Because stages 3–5 are pure in ``(geometry fingerprint, coverage set,
refine flag)``, their artifacts memoize perfectly: :func:`plan_tours` is
the cached stage-3..5 runner every planner goes through, backed by a
:class:`~repro.plan.cache.PlanArtifactCache`. With ``cache=None`` it
degrades to exactly the uncached Algorithm 2 call — same tours, same
instrumentation — so the cache is a pure accelerator, never a semantic
switch (``tests/property/test_prop_plan_cache.py`` holds it to that).

Cache instrumentation (all under the enabled context only):

========================== =================================================
``plan.cache.tours.hit``   final tour set served from cache (no work at all)
``plan.cache.tours.miss``  final tour set had to be (partially) built
``plan.cache.base.hit``    refine requested, base tours reused (2-opt only)
``plan.cache.base.miss``   refine requested, base tours absent too
``plan.cache.forest.hit``  MSF reused, only the tree walk re-ran
``plan.cache.forest.miss`` full Algorithm 1 + 2 run
========================== =================================================
"""

from __future__ import annotations

from repro.core.quantize import Quantization
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.plan.cache import PlanArtifactCache
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp
from repro.rooted.refine import refine_tours
from repro.tsp.construct import tours_from_forest
from repro.tsp.tour import Tour

__all__ = ["plan_tours", "build_block", "distinct_coverage"]


def distinct_coverage(quant: Quantization) -> tuple[frozenset[int], ...]:
    """The block's distinct coverage sets, in first-appearance order.

    A ``2^K`` block contains at most ``K + 1`` distinct sets (one per
    divisor pattern of the scheduling index); this is the work list stage 3
    actually has to solve.
    """
    seen: dict[frozenset[int], None] = {}
    for cov in quant.coverage_sets():
        seen.setdefault(cov, None)
    return tuple(seen)


def plan_tours(network: SensorNetwork, coverage: frozenset[int],
               *, refine: bool = False,
               cache: PlanArtifactCache | None = None,
               obs: Instrumentation | None = None) -> tuple[Tour, ...]:
    """Stages 3–5 for one coverage set, with artifact reuse.

    Parameters
    ----------
    network:
        The WSN instance; supplies geometry, depots and the fingerprint.
    coverage:
        The frozen to-be-charged sensor set (graph = sensor indices).
    refine:
        Apply the 2-opt post-pass (stage 5).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache`. ``None``
        (the default) runs Algorithm 2 directly — output is tour-for-tour
        identical either way, since the cached path is the same stage
        composition with memoized intermediates.
    obs:
        Optional instrumentation; the cached path records the
        ``plan.cache.*`` hit/miss counters documented in the module
        docstring, and forwards to the stage implementations it runs.

    Returns
    -------
    tuple[Tour, ...]
        One tour per depot, jointly covering ``coverage``.
    """
    depots = [int(i) for i in network.depot_indices]
    if cache is None:
        return tuple(q_rooted_tsp(network.dist, sorted(coverage), depots,
                                  refine=refine, obs=obs))

    o = ensure(obs)
    fp = network.geometry_fingerprint
    tours = cache.get_tours(fp, coverage, refine)
    if tours is not None:
        o.incr("plan.cache.tours.hit")
        return tours
    o.incr("plan.cache.tours.miss")

    base: tuple[Tour, ...] | None = None
    if refine:
        base = cache.get_tours(fp, coverage, False)
        o.incr("plan.cache.base.hit" if base is not None else "plan.cache.base.miss")
    if base is None:
        forest = cache.get_forest(fp, coverage)
        if forest is None:
            o.incr("plan.cache.forest.miss")
            forest = q_rooted_msf(network.dist, sorted(coverage), depots, obs=obs)
            cache.put_forest(fp, coverage, forest)
        else:
            o.incr("plan.cache.forest.hit")
        base = tuple(tours_from_forest(forest))
        cache.put_tours(fp, coverage, False, base)
        if not refine:
            return base
    refined = tuple(refine_tours(network.dist, base, obs=obs))
    cache.put_tours(fp, coverage, True, refined)
    return refined


def build_block(network: SensorNetwork, quant: Quantization,
                *, refine: bool = False,
                cache: PlanArtifactCache | None = None,
                obs: Instrumentation | None = None) -> tuple[tuple[Tour, ...], ...]:
    """The ``2^K`` distinct tour sets of one scheduling block (stages 2–5).

    Scheduling ``j`` covers every class whose assigned cycle divides
    ``j * tau_1``; its tours come from :func:`plan_tours` on the frozen
    coverage set. Identical sensor sets across different ``j`` (common: any
    ``j`` with the same divisor pattern) are resolved once and shared by
    reference. ``obs`` counts the within-block structure
    (``plan.block.solved`` / ``plan.block.reused``) and times the whole
    construction under the ``plan.block`` span; the ``plan.cache.*``
    counters (cached runs only) reveal how cheap each resolution was.
    """
    o = ensure(obs)
    resolved: dict[frozenset[int], tuple[Tour, ...]] = {}
    block: list[tuple[Tour, ...]] = []
    with o.span("plan.block", block_size=quant.block_size):
        for cov in quant.coverage_sets():
            if cov not in resolved:
                resolved[cov] = plan_tours(network, cov, refine=refine,
                                           cache=cache, obs=obs)
                o.incr("plan.block.solved")
            else:
                o.incr("plan.block.reused")
            block.append(resolved[cov])
    return tuple(block)
