"""repro.plan — the staged planner pipeline and its artifact cache.

Planning is structured as five explicit stages (quantize → coverage sets →
q-rooted forest → tour construction → optional 2-opt refine; see
:mod:`repro.plan.pipeline`), and everything downstream of the coverage set
is content-addressable: :class:`~repro.plan.cache.PlanArtifactCache`
memoizes forests and tour sets by ``(geometry fingerprint, frozen coverage
set, refine flag)``, which pays off within a ``2^K`` block, across
``mtd-var`` re-plans over fixed geometry, and across algorithm variants
that share base tours (``mtd`` vs ``mtd+2opt``).

:class:`~repro.plan.store.PlanArtifactStore` adds a crash-safe on-disk
tier under that same key scheme: the pipeline falls back to it on a
memory miss and writes computed artifacts through it, so plans survive
process restarts and are shared across concurrent processes (atomic
writes, per-entry checksums, advisory locking; corrupt entries are
quarantined, never served).

``docs/ARCHITECTURE.md`` describes the stage boundaries, the cache-key
design and how the parallel experiment executor builds on them.
"""

from repro.plan.cache import PlanArtifactCache
from repro.plan.pipeline import build_block, build_levels, distinct_coverage, plan_tours
from repro.plan.store import PlanArtifactStore

__all__ = [
    "PlanArtifactCache",
    "PlanArtifactStore",
    "build_block",
    "build_levels",
    "distinct_coverage",
    "plan_tours",
]
