"""The content-addressed plan-artifact cache.

Algorithm 3 plans are assembled from a tiny set of expensive, *pure*
artifacts: the q-rooted MSF of one coverage set, the base tours constructed
from it, and (optionally) their 2-opt refinement. All three depend only on

* the network **geometry** (``SensorNetwork.geometry_fingerprint``),
* the **frozen coverage set** being spanned, and
* for tours, the **refine flag**.

Notably they do *not* depend on the charging cycles, the horizon, or the
plan's start time — which is why one cache serves three very different
reuse patterns:

1. **Within a block**: at most ``K + 1`` of the ``2^K`` schedulings are
   distinct (Algorithm 3's own structure).
2. **Across re-plans**: ``mtd-var`` re-runs Algorithm 3 over the *same
   fixed geometry* every time the workload shifts; coverage sets recur
   whenever cycle estimates land in the same quantisation classes.
3. **Across algorithm variants**: ``mtd`` and ``mtd+2opt`` share base
   tours — the refined variant only pays for the 2-opt pass.

The cache is a plain in-process LRU store; it is *not* shared across
processes (the parallel experiment executor gives each topology job its
own, which is also what keeps parallel runs bit-identical to serial ones),
but it *is* shared across threads: the planning service's thread-mode
workers all plan against one instance, so every store access is guarded by
an internal :class:`threading.Lock` (``OrderedDict`` reorder-on-read plus
eviction is not atomic under concurrent callers). Lookups and their
hit/miss accounting happen in :func:`repro.plan.pipeline.plan_tours`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.forest import RootedForest
    from repro.tsp.tour import Tour

__all__ = ["PlanArtifactCache"]

#: Default LRU capacity (per artifact kind). Generous: a 2^K block holds at
#: most K+1 distinct coverage sets, and mtd-var re-plans recycle them.
_DEFAULT_MAX_ENTRIES = 4096


class PlanArtifactCache:
    """LRU store of planning artifacts, keyed by content.

    Parameters
    ----------
    max_entries:
        Capacity of each of the two stores (forests; tours). The least
        recently used entry is evicted on overflow. ``None`` means
        unbounded.

    Notes
    -----
    Artifacts are immutable (:class:`~repro.graphs.forest.RootedForest` and
    :class:`~repro.tsp.tour.Tour` are frozen dataclasses; the MSF's arrays
    are write-protected), so handing the same object to many callers is
    safe. The cache itself keeps no instrumentation — the pipeline layer
    owns the ``plan.cache.*`` counters — but tracks plain hit/miss tallies
    for :meth:`info` and ``repr``.
    """

    def __init__(self, max_entries: int | None = _DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigError(
                f"PlanArtifactCache: max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._forests: OrderedDict[tuple, "RootedForest"] = OrderedDict()
        self._tours: OrderedDict[tuple, tuple["Tour", ...]] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------ internals
    def _get(self, store: OrderedDict, key: Hashable):
        with self._lock:
            try:
                value = store[key]
            except KeyError:
                self._misses += 1
                return None
            store.move_to_end(key)
            self._hits += 1
            return value

    def _put(self, store: OrderedDict, key: Hashable, value) -> None:
        with self._lock:
            store[key] = value
            store.move_to_end(key)
            if self.max_entries is not None and len(store) > self.max_entries:
                store.popitem(last=False)

    # -------------------------------------------------------------- forests
    def get_forest(self, fingerprint: str,
                   coverage: frozenset[int]) -> "RootedForest | None":
        """Cached q-rooted MSF of ``coverage``, or ``None``."""
        return self._get(self._forests, (fingerprint, coverage))

    def put_forest(self, fingerprint: str, coverage: frozenset[int],
                   forest: "RootedForest") -> None:
        self._put(self._forests, (fingerprint, coverage), forest)

    # ---------------------------------------------------------------- tours
    def get_tours(self, fingerprint: str, coverage: frozenset[int],
                  refine: bool) -> "tuple[Tour, ...] | None":
        """Cached tour set of ``coverage`` at the given refine level."""
        return self._get(self._tours, (fingerprint, coverage, bool(refine)))

    def put_tours(self, fingerprint: str, coverage: frozenset[int],
                  refine: bool, tours: "tuple[Tour, ...]") -> None:
        self._put(self._tours, (fingerprint, coverage, bool(refine)), tours)

    # ------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Drop every artifact (tallies are kept)."""
        with self._lock:
            self._forests.clear()
            self._tours.clear()

    @property
    def n_entries(self) -> int:
        """Total stored artifacts across both stores."""
        with self._lock:
            return len(self._forests) + len(self._tours)

    def keys(self) -> dict[str, list[tuple]]:
        """Point-in-time snapshot of both stores' keys (LRU → MRU order).

        Diagnostic accessor for the :mod:`repro.check` differential
        harness, which uses it to plant poisoned entries under the exact
        keys the pipeline will look up and to assert that a warm re-plan
        created no new entries. Taken under the lock; the returned lists
        are copies and safe to iterate while the cache keeps serving.
        """
        with self._lock:
            return {
                "forests": list(self._forests.keys()),
                "tours": list(self._tours.keys()),
            }

    def tally(self) -> tuple[int, int]:
        """``(hits, misses)`` read atomically under the lock.

        The tallies are mutated together inside :meth:`_get`; reading them
        as two separate (even individually locked) accesses can observe a
        torn pair under contention — e.g. a hit counted but its companion
        total not yet visible. Every reader that needs a *consistent* pair
        (``info``, ``repr``, the hammer tests) goes through here.
        """
        with self._lock:
            return self._hits, self._misses

    @property
    def hits(self) -> int:
        """Lifetime cache hits (locked read; see :meth:`tally`)."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lifetime cache misses (locked read; see :meth:`tally`)."""
        with self._lock:
            return self._misses

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time shallow copy of both stores (key → artifact).

        Taken under the lock; the artifacts themselves are immutable, so
        the copies are safe to serialise while the cache keeps serving.
        :meth:`repro.plan.store.PlanArtifactStore.flush` uses this to
        persist a worker's cache on drain.
        """
        with self._lock:
            return {
                "forests": dict(self._forests),
                "tours": dict(self._tours),
            }

    def info(self) -> dict[str, int]:
        """Size and traffic summary (used by tests and diagnostics).

        One lock acquisition: sizes and the hit/miss pair are mutually
        consistent (the lock is not reentrant, so this reads the private
        tallies directly rather than going through :meth:`tally`).
        """
        with self._lock:
            return {
                "forests": len(self._forests),
                "tours": len(self._tours),
                "hits": self._hits,
                "misses": self._misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i = self.info()
        return (f"PlanArtifactCache(forests={i['forests']}, "
                f"tours={i['tours']}, hits={i['hits']}, "
                f"misses={i['misses']})")
