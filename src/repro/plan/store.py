"""Crash-safe, content-addressed on-disk plan-artifact store (tier 2).

The in-memory :class:`~repro.plan.cache.PlanArtifactCache` dies with its
process — serve workers, CLI runs and sweep jobs all cold-start after any
restart even though the artifacts they rebuild (q-rooted MSFs, base tours,
2-opt refinements) are pure in ``(geometry fingerprint, coverage set,
refine flag)``. This module persists those artifacts under that same key so
a fresh process replans warm: the pipeline consults the store on an
in-memory miss and writes computed artifacts back through it
(:func:`repro.plan.pipeline.plan_tours`), and serve workers pre-load their
caches from it at pool boot (:func:`~PlanArtifactStore.warm`).

Durability model
----------------
* **Atomic writes** — each entry is serialised to a temp file in the same
  directory, fsynced, then published with ``os.replace``. A crash mid-write
  leaves either the previous entry or a stray temp file, never a torn
  entry; readers see complete files only.
* **Per-entry checksums** — the entry records a SHA-256 over the canonical
  JSON of its key + payload. Any corruption (bit-flips, truncation,
  tampering, partial storage-level writes) fails the checksum on read.
* **Quarantine, never serve** — a corrupt or undecodable entry is moved
  into ``quarantine/`` and reported as a miss; the planner recomputes and
  rewrites it. ``repro.check`` injects exactly these faults and asserts the
  replan is correct.
* **Advisory file locking** — mutating operations take an exclusive
  ``fcntl.flock`` on ``<root>/.lock`` so concurrent processes (parallel
  executor jobs, serve pool workers) interleave safely. Readers don't lock:
  publication is atomic, so they observe either a complete entry or none.
  On platforms without ``fcntl`` the lock degrades to a no-op (single
  process still fully safe).

Layout: ``<root>/plan-store.json`` (marker), ``objects/<dd>/<digest>.json``
(two-hex-char fan-out), ``quarantine/``, ``.lock``. The marker guards
destructive operations — ``clear``/``gc`` refuse to run on a directory this
module didn't initialise.

Instrumentation: store traffic lands in the ``plan.cache.disk.{hits,
misses, writes, corrupt, bytes}`` counters and bulk operations (warm,
flush, verify, gc, clear) run under a ``plan.store`` span (see
``docs/OBSERVABILITY.md``). Independent of any ``obs`` wiring the store
keeps thread-safe lifetime tallies for ``repro cache stats``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import ConfigError
from repro.graphs.forest import RootedForest
from repro.obs.instrument import Instrumentation, ensure
from repro.tsp.tour import Tour

try:  # pragma: no cover - import guard exercised only on exotic platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.cache import PlanArtifactCache

__all__ = ["PlanArtifactStore"]

#: Envelope kind of one on-disk entry.
_ENTRY_KIND = "plan-artifact"
#: Bumped whenever the entry structure changes incompatibly; a version
#: mismatch reads as corrupt (quarantined, recomputed) rather than crashing.
_ENTRY_VERSION = 1
#: Marker file that identifies a directory as a plan store.
_MARKER_NAME = "plan-store.json"
_MARKER_KIND = "plan-artifact-store"


def _canonical(data: Any) -> bytes:
    """Canonical JSON bytes: the checksum and digest base representation."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode()


def _key_dict(fingerprint: str, coverage: frozenset[int], artifact: str,
              refine: bool | None) -> dict[str, Any]:
    key: dict[str, Any] = {
        "fingerprint": str(fingerprint),
        "coverage": sorted(int(s) for s in coverage),
        "artifact": artifact,
    }
    if refine is not None:
        key["refine"] = bool(refine)
    return key


def _tours_payload(tours: tuple[Tour, ...]) -> dict[str, Any]:
    return {"tours": [{"depot": int(t.depot), "order": [int(v) for v in t.order]}
                      for t in tours]}


def _tours_from_payload(payload: dict[str, Any]) -> tuple[Tour, ...]:
    return tuple(
        Tour(depot=int(t["depot"]), order=tuple(int(v) for v in t["order"]))
        for t in payload["tours"])


def _forest_payload(forest: RootedForest) -> dict[str, Any]:
    return {
        "roots": [int(r) for r in forest.roots],
        "trees": [[[int(u), int(v)] for u, v in tree] for tree in forest.trees],
    }


def _forest_from_payload(payload: dict[str, Any]) -> RootedForest:
    return RootedForest(
        roots=tuple(int(r) for r in payload["roots"]),
        trees=tuple(tuple((int(u), int(v)) for u, v in tree)
                    for tree in payload["trees"]))


class PlanArtifactStore:
    """Disk tier of the two-tier plan-artifact cache.

    Parameters
    ----------
    root:
        Store directory. Created (with marker) if absent; an existing
        non-empty directory that is *not* a plan store is rejected with
        :class:`~repro.errors.ConfigError` so destructive maintenance
        commands can never be pointed at arbitrary data.

    Notes
    -----
    The instance is safe to share across threads (tallies and lock-file
    handling are internally synchronised) and the directory is safe to
    share across processes (advisory locking + atomic publication). All
    artifact methods take an optional ``obs`` and record the
    ``plan.cache.disk.*`` counters on it.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._quarantine = self.root / "quarantine"
        self._lockfile = self.root / ".lock"
        self._tally_lock = threading.Lock()
        self._tallies = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                         "bytes_written": 0, "lock_acquires": 0,
                         "lock_contended": 0, "lock_wait_s": 0.0,
                         "lock_wait_max_s": 0.0}
        marker = self.root / _MARKER_NAME
        if self.root.exists():
            if not self.root.is_dir():
                raise ConfigError(f"PlanArtifactStore: {self.root} is not a directory")
            if not marker.exists() and any(self.root.iterdir()):
                raise ConfigError(
                    f"PlanArtifactStore: {self.root} exists, is not empty and "
                    f"has no {_MARKER_NAME} marker — refusing to treat it as "
                    f"a plan store")
        self._objects.mkdir(parents=True, exist_ok=True)
        self._quarantine.mkdir(parents=True, exist_ok=True)
        if not marker.exists():
            self._atomic_write(marker, _canonical(
                {"kind": _MARKER_KIND, "version": _ENTRY_VERSION}) + b"\n")

    # ------------------------------------------------------------- internals
    def _count(self, **deltas: int) -> None:
        with self._tally_lock:
            for name, d in deltas.items():
                self._tallies[name] += d

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock over the store directory (no-op where
        ``fcntl`` is unavailable).

        Tries the lock non-blocking first: an immediate grab is the
        uncontended fast path; failure means another process (a fleet
        shard, a parallel runner) holds it, so the blocking wait is timed
        and tallied — ``lock_contended`` / ``lock_wait_s`` in
        :meth:`stats` are how cross-shard store contention is diagnosed
        (``repro cache stats``).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with self._lockfile.open("a") as fh:
            contended = False
            waited = 0.0
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                contended = True
                t0 = time.perf_counter()
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                waited = time.perf_counter() - t0
            with self._tally_lock:
                self._tallies["lock_acquires"] += 1
                if contended:
                    self._tallies["lock_contended"] += 1
                    self._tallies["lock_wait_s"] += waited
                    self._tallies["lock_wait_max_s"] = max(
                        self._tallies["lock_wait_max_s"], waited)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    @staticmethod
    def _atomic_write(path: Path, blob: bytes) -> None:
        """Publish ``blob`` at ``path`` via temp file + fsync + rename.

        The temp name must not end in ``.json``: entry scans glob
        ``*.json`` and must never observe (or quarantine) an in-flight
        write from another process.
        """
        tmp = path.parent / f".{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        try:
            with tmp.open("wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()

    def _digest(self, key: dict[str, Any]) -> str:
        return hashlib.sha256(_canonical(key)).hexdigest()

    def _path_of(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def _entry_blob(self, key: dict[str, Any], payload: dict[str, Any]) -> bytes:
        checksum = hashlib.sha256(
            _canonical({"key": key, "payload": payload})).hexdigest()
        entry = {"kind": _ENTRY_KIND, "version": _ENTRY_VERSION,
                 "key": key, "checksum": checksum, "payload": payload}
        return json.dumps(entry, sort_keys=True).encode() + b"\n"

    def _quarantine_entry(self, path: Path, obs: Instrumentation) -> None:
        """Move a bad entry out of the serving set (atomically; a racing
        reader either still sees it — and re-detects — or gets a miss)."""
        dest = self._quarantine / f"{os.getpid()}-{path.name}"
        with self._locked():
            with contextlib.suppress(FileNotFoundError, OSError):
                os.replace(path, dest)
        self._count(corrupt=1)
        obs.incr("plan.cache.disk.corrupt")

    def _decode_entry(self, blob: bytes,
                      expect_key: dict[str, Any] | None) -> dict[str, Any]:
        """Parse + integrity-check one entry; raises ``ValueError`` on any
        corruption (malformed JSON, wrong kind/version, checksum mismatch,
        key mismatch — an entry stored under the wrong name)."""
        entry = json.loads(blob)
        if not isinstance(entry, dict) or entry.get("kind") != _ENTRY_KIND:
            raise ValueError("not a plan-artifact entry")
        if entry.get("version") != _ENTRY_VERSION:
            raise ValueError(f"unsupported entry version {entry.get('version')}")
        key, payload = entry.get("key"), entry.get("payload")
        if not isinstance(key, dict) or not isinstance(payload, dict):
            raise ValueError("missing key/payload")
        checksum = hashlib.sha256(
            _canonical({"key": key, "payload": payload})).hexdigest()
        if checksum != entry.get("checksum"):
            raise ValueError("checksum mismatch")
        if expect_key is not None and key != expect_key:
            raise ValueError("entry key does not match its address")
        return entry

    def _get(self, key: dict[str, Any], obs: Instrumentation | None):
        o = ensure(obs)
        path = self._path_of(self._digest(key))
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._count(misses=1)
            o.incr("plan.cache.disk.misses")
            return None
        try:
            entry = self._decode_entry(blob, key)
            if key["artifact"] == "tours":
                value: Any = _tours_from_payload(entry["payload"])
            else:
                value = _forest_from_payload(entry["payload"])
        except Exception:
            # Malformed, truncated, bit-flipped or mis-keyed: quarantine and
            # report a miss — a corrupt artifact is NEVER served.
            self._quarantine_entry(path, o)
            self._count(misses=1)
            o.incr("plan.cache.disk.misses")
            return None
        # Touch for gc recency (best-effort; never blocks a hit).
        with contextlib.suppress(OSError):
            os.utime(path)
        self._count(hits=1)
        o.incr("plan.cache.disk.hits")
        return value

    def _put(self, key: dict[str, Any], payload: dict[str, Any],
             obs: Instrumentation | None) -> Path:
        o = ensure(obs)
        blob = self._entry_blob(key, payload)
        path = self._path_of(self._digest(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._locked():
            self._atomic_write(path, blob)
        self._count(writes=1, bytes_written=len(blob))
        o.incr("plan.cache.disk.writes")
        o.incr("plan.cache.disk.bytes", len(blob))
        return path

    def _iter_entries(self) -> Iterator[Path]:
        if not self._objects.exists():
            return
        for sub in sorted(self._objects.iterdir()):
            if sub.is_dir():
                for p in sorted(sub.glob("*.json")):
                    yield p

    # -------------------------------------------------------------- artifacts
    def get_tours(self, fingerprint: str, coverage: frozenset[int],
                  refine: bool, *,
                  obs: Instrumentation | None = None) -> tuple[Tour, ...] | None:
        """Stored tour set for the key, or ``None`` (miss / quarantined)."""
        return self._get(_key_dict(fingerprint, coverage, "tours", refine), obs)

    def put_tours(self, fingerprint: str, coverage: frozenset[int],
                  refine: bool, tours: tuple[Tour, ...], *,
                  obs: Instrumentation | None = None) -> Path:
        return self._put(_key_dict(fingerprint, coverage, "tours", refine),
                         _tours_payload(tuple(tours)), obs)

    def get_forest(self, fingerprint: str, coverage: frozenset[int], *,
                   obs: Instrumentation | None = None) -> RootedForest | None:
        """Stored q-rooted MSF for the key, or ``None`` (miss / quarantined)."""
        return self._get(_key_dict(fingerprint, coverage, "forest", None), obs)

    def put_forest(self, fingerprint: str, coverage: frozenset[int],
                   forest: RootedForest, *,
                   obs: Instrumentation | None = None) -> Path:
        return self._put(_key_dict(fingerprint, coverage, "forest", None),
                         _forest_payload(forest), obs)

    # ------------------------------------------------------------- bulk ops
    def warm(self, cache: "PlanArtifactCache", *,
             obs: Instrumentation | None = None) -> int:
        """Load every readable entry into ``cache`` (worker pool boot path).

        Corrupt entries are quarantined and skipped. Returns the number of
        artifacts loaded.
        """
        o = ensure(obs)
        loaded = 0
        with o.span("plan.store", op="warm"):
            for path in list(self._iter_entries()):
                try:
                    entry = self._decode_entry(path.read_bytes(), None)
                    key = entry["key"]
                    cov = frozenset(int(s) for s in key["coverage"])
                    if key["artifact"] == "tours":
                        cache.put_tours(key["fingerprint"], cov,
                                        bool(key["refine"]),
                                        _tours_from_payload(entry["payload"]))
                    elif key["artifact"] == "forest":
                        cache.put_forest(key["fingerprint"], cov,
                                         _forest_from_payload(entry["payload"]))
                    else:
                        raise ValueError(f"unknown artifact {key['artifact']!r}")
                except FileNotFoundError:
                    continue  # raced with gc/clear in another process
                except Exception:
                    self._quarantine_entry(path, o)
                    continue
                loaded += 1
        return loaded

    def flush(self, cache: "PlanArtifactCache", *,
              obs: Instrumentation | None = None) -> int:
        """Write ``cache``'s artifacts to disk (drain path); returns the
        number of entries written. Entries already on disk are skipped —
        artifacts are content-addressed, so an existing entry is current by
        construction."""
        o = ensure(obs)
        written = 0
        snap = cache.snapshot()
        with o.span("plan.store", op="flush"):
            for (fp, cov), forest in snap["forests"].items():
                if not self._path_of(self._digest(
                        _key_dict(fp, cov, "forest", None))).exists():
                    self.put_forest(fp, cov, forest, obs=obs)
                    written += 1
            for (fp, cov, refine), tours in snap["tours"].items():
                if not self._path_of(self._digest(
                        _key_dict(fp, cov, "tours", refine))).exists():
                    self.put_tours(fp, cov, refine, tours, obs=obs)
                    written += 1
        return written

    def verify(self, *, obs: Instrumentation | None = None) -> dict[str, int]:
        """Integrity-scan every entry; corrupt ones are quarantined.

        Returns ``{"checked": n, "ok": n, "corrupt": n}``.
        """
        o = ensure(obs)
        checked = ok = corrupt = 0
        with o.span("plan.store", op="verify"):
            for path in list(self._iter_entries()):
                checked += 1
                try:
                    entry = self._decode_entry(path.read_bytes(), None)
                    if entry["key"]["artifact"] == "tours":
                        _tours_from_payload(entry["payload"])
                    else:
                        _forest_from_payload(entry["payload"])
                    expected = self._digest(entry["key"])
                    if path.name != f"{expected}.json":
                        raise ValueError("entry stored under wrong address")
                except FileNotFoundError:
                    checked -= 1
                    continue
                except Exception:
                    self._quarantine_entry(path, o)
                    corrupt += 1
                    continue
                ok += 1
        return {"checked": checked, "ok": ok, "corrupt": corrupt}

    def gc(self, *, max_entries: int | None = None,
           max_bytes: int | None = None,
           obs: Instrumentation | None = None) -> dict[str, int]:
        """Trim the store to the given budgets, oldest-read first.

        Recency is the file mtime (reads touch it). Quarantined entries are
        always purged — they exist only for post-mortem inspection between
        maintenance runs. Returns removal/retention counts.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigError(f"gc: max_entries must be >= 0, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigError(f"gc: max_bytes must be >= 0, got {max_bytes}")
        o = ensure(obs)
        removed = purged = 0
        with o.span("plan.store", op="gc"), self._locked():
            for junk in list(self._quarantine.glob("*")):
                with contextlib.suppress(OSError):
                    junk.unlink()
                    purged += 1
            entries = []
            for path in self._iter_entries():
                with contextlib.suppress(OSError):
                    st = path.stat()
                    entries.append((st.st_mtime, st.st_size, path))
            entries.sort()  # oldest first
            total = len(entries)
            total_bytes = sum(size for _, size, _ in entries)
            drop = 0
            if max_entries is not None:
                drop = max(drop, total - max_entries)
            if max_bytes is not None:
                b = total_bytes
                while drop < total and b > max_bytes:
                    b -= entries[drop][1]
                    drop += 1
            for _, _, path in entries[:drop]:
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
        return {"removed": removed, "kept": total - removed,
                "quarantine_purged": purged}

    def clear(self, *, obs: Instrumentation | None = None) -> int:
        """Delete every entry (and quarantined file); returns the count."""
        o = ensure(obs)
        removed = 0
        with o.span("plan.store", op="clear"), self._locked():
            for path in list(self._iter_entries()) + list(self._quarantine.glob("*")):
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
        return removed

    # ------------------------------------------------------------ inspection
    @property
    def n_entries(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def stats(self) -> dict[str, Any]:
        """Point-in-time store summary plus this process's traffic tallies."""
        entries = 0
        total_bytes = 0
        kinds = {"tours": 0, "forest": 0, "unreadable": 0}
        for path in self._iter_entries():
            with contextlib.suppress(OSError):
                total_bytes += path.stat().st_size
            entries += 1
            try:
                entry = self._decode_entry(path.read_bytes(), None)
                kinds[entry["key"]["artifact"]] = \
                    kinds.get(entry["key"]["artifact"], 0) + 1
            except Exception:
                kinds["unreadable"] += 1
        with self._tally_lock:
            session = dict(self._tallies)
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "tours": kinds["tours"],
            "forests": kinds["forest"],
            "unreadable": kinds["unreadable"],
            "quarantined": sum(1 for _ in self._quarantine.glob("*")),
            "session": session,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanArtifactStore(root={str(self.root)!r}, entries={self.n_entries})"
