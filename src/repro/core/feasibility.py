"""Plan feasibility: does any sensor ever run out of energy?

A plan is feasible iff for every sensor the gap between consecutive charges
— treating time 0 as a (full) charge, and the horizon ``T`` as the final
deadline — never exceeds its maximum charging cycle ``tau_i`` (the paper's
constraints (i) and (ii) in Section III.C).

The checker is analytical (it inspects gaps, it does not simulate), so it is
exact for fixed cycles and fast enough to run inside property-based tests.
The slotted simulator in :mod:`repro.sim` provides the independent,
trajectory-level verification of the same property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import SchedulePlan

__all__ = ["FeasibilityViolation", "FeasibilityReport", "check_feasibility"]

#: Relative slack for gap comparisons: quantisation may overshoot a cycle by
#: a few ulps (documented in repro.core.quantize); physical meaning is "the
#: battery hits exactly zero as the charger arrives", which the paper counts
#: as alive.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class FeasibilityViolation:
    """One sensor running dry.

    Parameters
    ----------
    sensor:
        Sensor id.
    gap_start, gap_end:
        The uncovered interval: the sensor was last charged (or full) at
        ``gap_start`` and not charged again by ``gap_end``.
    cycle:
        The sensor's maximum charging cycle; ``gap_end - gap_start > cycle``.
    """

    sensor: int
    gap_start: float
    gap_end: float
    cycle: float

    @property
    def excess(self) -> float:
        """How much too long the gap is."""
        return (self.gap_end - self.gap_start) - self.cycle


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check.

    Truthy iff feasible; ``violations`` lists every offending gap (one per
    sensor at most — the first encountered)."""

    feasible: bool
    violations: tuple[FeasibilityViolation, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.feasible

    def summary(self) -> str:
        """Human-readable one-liner."""
        if self.feasible:
            return "feasible: every sensor is charged within its maximum cycle"
        worst = max(self.violations, key=lambda v: v.excess)
        return (f"INFEASIBLE: {len(self.violations)} sensor(s) die; worst is sensor "
                f"{worst.sensor} with gap {worst.gap_end - worst.gap_start:.4g} "
                f"> cycle {worst.cycle:.4g}")


def check_feasibility(plan: SchedulePlan, cycles: np.ndarray,
                      *, sensors: np.ndarray | None = None,
                      start_time: float = 0.0,
                      initially_full: bool = True) -> FeasibilityReport:
    """Check a plan against maximum charging cycles.

    Parameters
    ----------
    plan:
        The charging plan (its ``horizon`` is the deadline for the final gap).
    cycles:
        ``(n,)`` maximum charging cycles; index = sensor id.
    sensors:
        Sensor ids to check (default: all of ``0..n-1``).
    start_time:
        When the clock starts (sensors are full then if ``initially_full``).
    initially_full:
        If False, the first gap is not anchored at ``start_time``; the first
        charge itself is the anchor (used when checking plan *tails* whose
        sensors were charged by earlier schedulings).

    Returns
    -------
    FeasibilityReport
    """
    tau = np.asarray(cycles, dtype=np.float64)
    ids = np.arange(tau.shape[0]) if sensors is None else np.asarray(sensors, dtype=np.intp)

    # One pass over the plan to collect charge times per sensor.
    charges: dict[int, list[float]] = {int(i): [] for i in ids}
    wanted = set(charges)
    for s in plan.schedulings:
        hit = wanted & s.charged_sensors
        for i in hit:
            charges[i].append(s.time)

    violations: list[FeasibilityViolation] = []
    for i in ids:
        t_i = float(tau[i])
        slack = t_i * _REL_TOL
        anchors = ([start_time] if initially_full else []) + charges[int(i)] + [plan.horizon]
        if not initially_full and not charges[int(i)]:
            # Never charged and no initial anchor: only the horizon matters,
            # and there is no interval to measure — treat as feasible here;
            # trajectory-level checks belong to the simulator.
            continue
        for a, b in zip(anchors, anchors[1:]):
            if b - a > t_i + slack:
                violations.append(FeasibilityViolation(
                    sensor=int(i), gap_start=a, gap_end=b, cycle=t_i))
                break
    return FeasibilityReport(feasible=not violations, violations=tuple(violations))
