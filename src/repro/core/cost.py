"""Service-cost accounting.

The paper's objective is the *service cost*: the total distance the ``q``
mobile chargers travel over the monitoring period. These helpers compute it
(and useful decompositions) for any :class:`~repro.core.schedule.SchedulePlan`,
with tour-set-level caching so Algorithm 3's block-repeating plans cost
``O(2^K)`` tour costings rather than ``O(T / tau_1)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import SchedulePlan
from repro.tsp.tour import Tour

__all__ = ["service_cost", "per_charger_cost", "cost_series"]


def _tour_cost_cache(dist: np.ndarray):
    """Memoised per-Tour cost function (tours are immutable and shared)."""
    d = np.asarray(dist)
    cache: dict[int, float] = {}

    def cost(t: Tour) -> float:
        key = id(t)
        if key not in cache:
            cache[key] = t.cost(d)
        return cache[key]

    return cost


def service_cost(dist: np.ndarray, plan: SchedulePlan) -> float:
    """Total travel distance of all chargers over the whole plan."""
    cost = _tour_cost_cache(dist)
    return float(sum(cost(t) for s in plan.schedulings for t in s.tours))


def per_charger_cost(dist: np.ndarray, plan: SchedulePlan) -> np.ndarray:
    """``(q,)`` distance travelled by each charger over the plan.

    Chargers are identified positionally (tour ``l`` of every scheduling
    belongs to charger ``l``); plans always dispatch all chargers, with
    stay-at-home tours contributing zero.
    """
    cost = _tour_cost_cache(dist)
    if not plan.schedulings:
        return np.zeros(0, dtype=np.float64)
    q = plan.schedulings[0].q
    out = np.zeros(q, dtype=np.float64)
    for s in plan.schedulings:
        for l, t in enumerate(s.tours):
            out[l] += cost(t)
    return out


def cost_series(dist: np.ndarray, plan: SchedulePlan) -> tuple[np.ndarray, np.ndarray]:
    """Per-scheduling costs: ``(times, costs)`` arrays of equal length.

    Useful for plotting cumulative service cost over time and for checking
    the block periodicity of Algorithm 3's plans.
    """
    cost = _tour_cost_cache(dist)
    times = plan.times
    costs = np.asarray(
        [sum(cost(t) for t in s.tours) for s in plan.schedulings], dtype=np.float64)
    return times, costs
