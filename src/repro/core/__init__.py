"""The paper's primary contribution: service-cost-minimising schedules.

* :mod:`~repro.core.quantize` — power-of-two charging-cycle quantisation:
  classes ``V_k`` with assigned cycles ``tau'_i = 2^k tau_1 in (tau_i/2, tau_i]``.
* :mod:`~repro.core.schedule` — :class:`ChargingScheduling` (one dispatch of
  the q chargers) and :class:`SchedulePlan` (the whole series).
* :mod:`~repro.core.mintotal` — Algorithm 3, ``MinTotalDistance``: the
  ``2(K+2)``-approximation for fixed maximum charging cycles.
* :mod:`~repro.core.feasibility` — verification that a plan never lets a
  sensor die (the problem's hard constraint).
* :mod:`~repro.core.cost` — service-cost accounting.
* :mod:`~repro.core.bounds` — the Lemma-3 lower bound on OPT and empirical
  approximation ratios.
"""

from repro.core.bounds import empirical_ratio, lemma3_lower_bound
from repro.core.cost import cost_series, per_charger_cost, service_cost
from repro.core.feasibility import FeasibilityReport, check_feasibility
from repro.core.mintotal import MinTotalDistanceResult, min_total_distance
from repro.core.quantize import Quantization, quantize_cycles
from repro.core.schedule import ChargingScheduling, SchedulePlan

__all__ = [
    "ChargingScheduling",
    "FeasibilityReport",
    "MinTotalDistanceResult",
    "Quantization",
    "SchedulePlan",
    "check_feasibility",
    "cost_series",
    "empirical_ratio",
    "lemma3_lower_bound",
    "min_total_distance",
    "per_charger_cost",
    "quantize_cycles",
    "service_cost",
]
