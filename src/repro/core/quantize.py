"""Geometric quantisation of maximum charging cycles (Section V.A).

The approximation algorithm's key structural move: replace each sensor's
maximum charging cycle ``tau_i`` by the assigned cycle

    ``tau'_i = b^k * tau_1``  where  ``b^k tau_1 <= tau_i < b^(k+1) tau_1``

(``tau_1`` being the smallest cycle in the network, ``b`` the geometric
base — the paper fixes ``b = 2``). Then

* ``tau'_i <= tau_i``       — charging at the assigned cycle is always safe,
* ``tau'_i >  tau_i / b``   — at most a factor-``b`` loss (paper's
  inequality (1) for ``b = 2``),
* all assigned cycles divide each other — which is what lets one block of
  ``b^K`` schedulings, repeated, cover the entire period.

The generalisation to integer ``b > 2`` is this library's ``abl-base``
ablation: a larger base means fewer classes (smaller ``K``, so a smaller
worst-case factor ``2(K+2)``-style term) but cruder rounding (up to a
factor ``b`` of over-charging). The bench measures where the trade lands.

Float care: ``k = floor(log_b(tau_i / tau_1))`` is computed vectorised and
then *corrected* against the defining inequalities with an explicit step in
each direction, so sensors whose ratio is an exact power of ``b`` (or an
ulp below it) always land in the class that keeps ``tau'_i <= tau_i`` true —
the feasibility-critical direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ScheduleError

__all__ = ["Quantization", "quantize_cycles"]

#: Relative tolerance for "is an exact power-of-b multiple": ratios within
#: this of the next class boundary are promoted (the paper's half-open
#: interval [b^k tau_1, b^(k+1) tau_1) with exact arithmetic).
_REL_TOL = 1e-9


@dataclass(frozen=True)
class Quantization:
    """Outcome of cycle quantisation.

    Parameters
    ----------
    cycles:
        The original ``(n,)`` maximum charging cycles ``tau_i``.
    tau1:
        The base cycle ``tau_1 = min_i tau_i``.
    k_of:
        ``(n,)`` integer class index of each sensor (``sensor i in V_{k_of[i]}``).
    K:
        The largest class index, ``K = max_i k_of[i]``
        (= ``floor(log_b(tau_max / tau_1))`` up to float care).
    base:
        The geometric base ``b`` (the paper's algorithm is ``b = 2``).
    """

    cycles: np.ndarray
    tau1: float
    k_of: np.ndarray
    K: int
    base: int = 2

    @property
    def n(self) -> int:
        return self.cycles.shape[0]

    @cached_property
    def assigned(self) -> np.ndarray:
        """``(n,)`` assigned cycles ``tau'_i = b^{k_of[i]} tau_1``."""
        arr = self.tau1 * np.power(float(self.base), self.k_of.astype(np.int64))
        arr.setflags(write=False)
        return arr

    @property
    def block_cycle(self) -> float:
        """``tau'_n = b^K tau_1`` — the longest assigned cycle, i.e. the
        length of one repeating scheduling block."""
        return float(self.tau1 * self.base ** self.K)

    @property
    def block_size(self) -> int:
        """``b^K`` — number of schedulings in one block."""
        return self.base ** self.K

    def members(self, k: int) -> np.ndarray:
        """Sensor ids in class ``V_k`` (possibly empty)."""
        if not (0 <= k <= self.K):
            raise ScheduleError(f"class index {k} out of range 0..{self.K}")
        return np.nonzero(self.k_of == k)[0]

    def classes(self) -> list[np.ndarray]:
        """All classes ``[V_0, ..., V_K]`` as sensor-id arrays."""
        return [self.members(k) for k in range(self.K + 1)]

    def sensors_due_at(self, j: int) -> np.ndarray:
        """Sensor ids that scheduling ``j`` (1-based within a block) must
        charge: the union of all ``V_k`` with ``j mod b^k == 0``.

        Follows the paper's construction: scheduling ``j`` runs at time
        ``j * tau_1`` and covers every class whose assigned cycle divides
        ``j * tau_1``.
        """
        if j < 1:
            raise ScheduleError(f"scheduling index must be >= 1, got {j}")
        ks = [k for k in range(self.K + 1) if j % (self.base ** k) == 0]
        if not ks:
            return np.empty(0, dtype=np.intp)
        mask = np.isin(self.k_of, ks)
        return np.nonzero(mask)[0]

    def coverage_sets(self) -> tuple[frozenset[int], ...]:
        """Stage-2 artifact of the planner pipeline: the frozen coverage set
        of every within-block scheduling.

        Element ``j - 1`` is scheduling ``j``'s sensor set
        ``⋃ {V_k : j mod b^k = 0}`` as an immutable ``frozenset`` —
        exactly the content-addressable key the plan-artifact cache uses
        (see :mod:`repro.plan`). At most ``K + 1`` of the ``b^K`` sets are
        distinct (one per divisor pattern of ``j``).
        """
        return tuple(
            frozenset(int(s) for s in self.sensors_due_at(j))
            for j in range(1, self.block_size + 1))

    def validate(self) -> None:
        """Assert the two defining inequalities ``tau_i/b < tau'_i <= tau_i``
        hold for every sensor (used by tests and the property suite)."""
        a = self.assigned
        if np.any(a > self.cycles * (1 + _REL_TOL)):
            bad = int(np.argmax(a > self.cycles * (1 + _REL_TOL)))
            raise ScheduleError(
                f"quantization unsafe: sensor {bad} assigned {a[bad]} > tau {self.cycles[bad]}")
        if np.any(a * self.base <= self.cycles * (1 - _REL_TOL)):
            bad = int(np.argmax(a * self.base <= self.cycles * (1 - _REL_TOL)))
            raise ScheduleError(
                f"quantization loose: sensor {bad} assigned {a[bad]} <= tau/b "
                f"= {self.cycles[bad] / self.base}")


def quantize_cycles(cycles: np.ndarray, *, base: int = 2) -> Quantization:
    """Quantise maximum charging cycles into geometric classes.

    Parameters
    ----------
    cycles:
        ``(n,)`` positive maximum charging cycles.
    base:
        Integer geometric base ``b >= 2``. The paper's algorithm (and the
        default) is ``b = 2``; larger bases trade rounding quality for
        fewer classes (see the ``abl-base`` bench).

    Returns
    -------
    Quantization
        The class structure; ``result.validate()`` is guaranteed to pass.
    """
    if not isinstance(base, (int, np.integer)) or base < 2:
        raise ScheduleError(f"quantize_cycles: base must be an integer >= 2, got {base!r}")
    tau = np.asarray(cycles, dtype=np.float64)
    if tau.ndim != 1 or tau.size == 0:
        raise ScheduleError(f"quantize_cycles: need a non-empty 1-D array, got shape {tau.shape}")
    if np.any(tau <= 0) or not np.all(np.isfinite(tau)):
        raise ScheduleError("quantize_cycles: cycles must be positive and finite")

    b = float(base)
    tau1 = float(tau.min())
    ratio = tau / tau1
    k = np.floor(np.log(ratio) / np.log(b)).astype(np.int64)
    # Correct float drift against the defining half-open interval.
    # Promote: ratio is within tolerance of (or beyond) the next boundary.
    too_low = np.power(b, k + 1) <= ratio * (1 + _REL_TOL)
    k[too_low] += 1
    # Demote: assigned cycle exceeds the true cycle (feasibility-critical).
    too_high = np.power(b, k) > ratio * (1 + _REL_TOL)
    k[too_high] -= 1
    if np.any(k < 0):
        raise ScheduleError("quantize_cycles: internal error — negative class index")

    q = Quantization(cycles=tau, tau1=tau1, k_of=k, K=int(k.max()), base=int(base))
    q.validate()
    return q
