"""Geometric quantisation of maximum charging cycles (Section V.A).

The approximation algorithm's key structural move: replace each sensor's
maximum charging cycle ``tau_i`` by the assigned cycle

    ``tau'_i = b^k * tau_1``  where  ``b^k tau_1 <= tau_i < b^(k+1) tau_1``

(``tau_1`` being the smallest cycle in the network, ``b`` the geometric
base — the paper fixes ``b = 2``). Then

* ``tau'_i <= tau_i``       — charging at the assigned cycle is always safe,
* ``tau'_i >  tau_i / b``   — at most a factor-``b`` loss (paper's
  inequality (1) for ``b = 2``),
* all assigned cycles divide each other — which is what lets one block of
  ``b^K`` schedulings, repeated, cover the entire period.

The generalisation to integer ``b > 2`` is this library's ``abl-base``
ablation: a larger base means fewer classes (smaller ``K``, so a smaller
worst-case factor ``2(K+2)``-style term) but cruder rounding (up to a
factor ``b`` of over-charging). The bench measures where the trade lands.

Float care: ``k = floor(log_b(tau_i / tau_1))`` is computed vectorised and
then *corrected* against the defining inequalities with an explicit step in
each direction, so sensors whose ratio is an exact power of ``b`` (or an
ulp below it) always land in the class that keeps ``tau'_i <= tau_i`` true —
the feasibility-critical direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ScheduleError

__all__ = ["Quantization", "quantize_cycles"]

#: Relative tolerance for "is an exact power-of-b multiple": ratios within
#: this of the next class boundary are promoted (the paper's half-open
#: interval [b^k tau_1, b^(k+1) tau_1) with exact arithmetic).
_REL_TOL = 1e-9

#: Hard guard on the class count. float64 cycle ratios top out near 2^1024,
#: so any K beyond this is a corrupted input, not a wide-but-real spread —
#: reject it before anything downstream trusts ``K``.
_MAX_K = 512

#: Largest block a caller may *enumerate* scheduling-by-scheduling.
#: ``block_size = b^K`` is a perfectly good integer at any K, but
#: materialising per-scheduling structures (the unrolled block, patch
#: tables) is O(b^K) memory; ``enumerable_block_size`` guards those paths.
_MAX_ENUMERABLE_BLOCK = 1 << 22


@dataclass(frozen=True)
class Quantization:
    """Outcome of cycle quantisation.

    Parameters
    ----------
    cycles:
        The original ``(n,)`` maximum charging cycles ``tau_i``.
    tau1:
        The base cycle ``tau_1 = min_i tau_i``.
    k_of:
        ``(n,)`` integer class index of each sensor (``sensor i in V_{k_of[i]}``).
    K:
        The largest class index, ``K = max_i k_of[i]``
        (= ``floor(log_b(tau_max / tau_1))`` up to float care).
    base:
        The geometric base ``b`` (the paper's algorithm is ``b = 2``).
    """

    cycles: np.ndarray
    tau1: float
    k_of: np.ndarray
    K: int
    base: int = 2

    @property
    def n(self) -> int:
        return self.cycles.shape[0]

    @cached_property
    def assigned(self) -> np.ndarray:
        """``(n,)`` assigned cycles ``tau'_i = b^{k_of[i]} tau_1``."""
        arr = self.tau1 * np.power(float(self.base), self.k_of.astype(np.int64))
        arr.setflags(write=False)
        return arr

    @property
    def block_cycle(self) -> float:
        """``tau'_n = b^K tau_1`` — the longest assigned cycle, i.e. the
        length of one repeating scheduling block."""
        return float(self.tau1 * self.base ** self.K)

    @property
    def block_size(self) -> int:
        """``b^K`` — number of schedulings in one block."""
        return self.base ** self.K

    def enumerable_block_size(self, limit: int = _MAX_ENUMERABLE_BLOCK) -> int:
        """``block_size``, guarded for scheduling-by-scheduling enumeration.

        Raises
        ------
        ScheduleError
            When one block holds more than ``limit`` schedulings. Wide cycle
            spreads (``tau_max/tau_1 = 2^40`` and beyond) are legal inputs —
            quantisation, the distinct coverage sets and the horizon-bounded
            plan unroll all stay O(K) or O(T/tau_1) — but any code that
            builds a per-scheduling structure of the whole block must refuse
            instead of attempting a ``b^K``-element allocation.
        """
        if self.block_size > limit:
            raise ScheduleError(
                f"block of {self.base}^{self.K} schedulings is too large to "
                f"enumerate (limit {limit}); use the level-indexed API "
                f"(coverage_sets / level_of) instead")
        return self.block_size

    def members(self, k: int) -> np.ndarray:
        """Sensor ids in class ``V_k`` (possibly empty)."""
        if not (0 <= k <= self.K):
            raise ScheduleError(f"class index {k} out of range 0..{self.K}")
        return np.nonzero(self.k_of == k)[0]

    def classes(self) -> list[np.ndarray]:
        """All classes ``[V_0, ..., V_K]`` as sensor-id arrays."""
        return [self.members(k) for k in range(self.K + 1)]

    def sensors_due_at(self, j: int) -> np.ndarray:
        """Sensor ids that scheduling ``j`` (1-based within a block) must
        charge: the union of all ``V_k`` with ``j mod b^k == 0``.

        Follows the paper's construction: scheduling ``j`` runs at time
        ``j * tau_1`` and covers every class whose assigned cycle divides
        ``j * tau_1``.
        """
        if j < 1:
            raise ScheduleError(f"scheduling index must be >= 1, got {j}")
        ks = [k for k in range(self.K + 1) if j % (self.base ** k) == 0]
        if not ks:
            return np.empty(0, dtype=np.intp)
        mask = np.isin(self.k_of, ks)
        return np.nonzero(mask)[0]

    def level_of(self, j: int) -> int:
        """Coverage *level* of scheduling ``j``: the largest ``v <= K`` with
        ``b^v | j``.

        ``b^k | j`` implies ``b^m | j`` for every ``m <= k``, so the classes
        scheduling ``j`` covers are always the prefix ``V_0 .. V_{level}`` —
        which is why one block has at most ``K + 1`` distinct coverage sets.
        Periodic in ``j`` with period ``b^K``, so global scheduling indices
        can be passed directly.
        """
        if j < 1:
            raise ScheduleError(f"scheduling index must be >= 1, got {j}")
        level = 0
        while level < self.K and j % (self.base ** (level + 1)) == 0:
            level += 1
        return level

    def coverage_sets(self) -> tuple[frozenset[int], ...]:
        """Stage-2 artifact of the planner pipeline: the ``K + 1`` distinct
        coverage sets, indexed by level.

        Element ``v`` is the prefix union ``U_v = V_0 ∪ ... ∪ V_v`` — the
        sensor set of every scheduling at level ``v`` (see :meth:`level_of`)
        as an immutable ``frozenset``, exactly the content-addressable key
        the plan-artifact cache uses (see :mod:`repro.plan`). Consecutive
        elements may be *equal* when a class is empty; consumers that need
        strictly distinct sets dedup (``repro.plan.pipeline.distinct_coverage``).

        This used to materialise one set per scheduling — ``b^K`` of them —
        which attempted a ``2^40``-element tuple on a wide cycle spread.
        The per-scheduling view is ``coverage_sets()[level_of(j)]`` with
        :meth:`coverage_multiplicities` giving each set's within-block count.
        """
        sets: list[frozenset[int]] = []
        acc: set[int] = set()
        for k in range(self.K + 1):
            acc.update(int(s) for s in self.members(k))
            sets.append(frozenset(acc))
        return tuple(sets)

    def coverage_multiplicities(self) -> tuple[int, ...]:
        """Within-block multiplicity of each level's coverage set.

        Element ``v`` counts the schedulings ``j in [1, b^K]`` with
        ``level_of(j) == v``: ``b^(K-v) - b^(K-v-1)`` for ``v < K`` and
        ``1`` for ``v = K``. The counts sum to ``block_size`` exactly
        (plain Python ints, so arbitrarily wide spreads are fine).
        """
        b, K = self.base, self.K
        return tuple(
            (b ** (K - v) - b ** (K - v - 1)) if v < K else 1
            for v in range(K + 1))

    def validate(self) -> None:
        """Assert the two defining inequalities ``tau_i/b < tau'_i <= tau_i``
        hold for every sensor (used by tests and the property suite)."""
        a = self.assigned
        if np.any(a > self.cycles * (1 + _REL_TOL)):
            bad = int(np.argmax(a > self.cycles * (1 + _REL_TOL)))
            raise ScheduleError(
                f"quantization unsafe: sensor {bad} assigned {a[bad]} > tau {self.cycles[bad]}")
        if np.any(a * self.base <= self.cycles * (1 - _REL_TOL)):
            bad = int(np.argmax(a * self.base <= self.cycles * (1 - _REL_TOL)))
            raise ScheduleError(
                f"quantization loose: sensor {bad} assigned {a[bad]} <= tau/b "
                f"= {self.cycles[bad] / self.base}")


def quantize_cycles(cycles: np.ndarray, *, base: int = 2) -> Quantization:
    """Quantise maximum charging cycles into geometric classes.

    Parameters
    ----------
    cycles:
        ``(n,)`` positive maximum charging cycles.
    base:
        Integer geometric base ``b >= 2``. The paper's algorithm (and the
        default) is ``b = 2``; larger bases trade rounding quality for
        fewer classes (see the ``abl-base`` bench).

    Returns
    -------
    Quantization
        The class structure; ``result.validate()`` is guaranteed to pass.
    """
    if not isinstance(base, (int, np.integer)) or base < 2:
        raise ScheduleError(f"quantize_cycles: base must be an integer >= 2, got {base!r}")
    tau = np.asarray(cycles, dtype=np.float64)
    if tau.ndim != 1 or tau.size == 0:
        raise ScheduleError(f"quantize_cycles: need a non-empty 1-D array, got shape {tau.shape}")
    if np.any(tau <= 0) or not np.all(np.isfinite(tau)):
        raise ScheduleError("quantize_cycles: cycles must be positive and finite")

    b = float(base)
    tau1 = float(tau.min())
    ratio = tau / tau1
    k = np.floor(np.log(ratio) / np.log(b)).astype(np.int64)
    # Correct float drift against the defining half-open interval.
    # Promote: ratio is within tolerance of (or beyond) the next boundary.
    too_low = np.power(b, k + 1) <= ratio * (1 + _REL_TOL)
    k[too_low] += 1
    # Demote: assigned cycle exceeds the true cycle (feasibility-critical).
    too_high = np.power(b, k) > ratio * (1 + _REL_TOL)
    k[too_high] -= 1
    if np.any(k < 0):
        raise ScheduleError("quantize_cycles: internal error — negative class index")
    if int(k.max()) > _MAX_K:
        raise ScheduleError(
            f"quantize_cycles: cycle spread gives K = {int(k.max())} classes "
            f"(> {_MAX_K}); a ratio tau_max/tau_1 beyond b^{_MAX_K} is not a "
            f"schedulable instance")

    q = Quantization(cycles=tau, tau1=tau1, k_of=k, K=int(k.max()), base=int(base))
    q.validate()
    return q
