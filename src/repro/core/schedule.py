"""Charging schedulings and plans — the solution data model.

A *charging scheduling* is the paper's 2-tuple ``(C_j, t_j)``: at time
``t_j`` every mobile charger ``l`` drives closed tour ``C_{j,l}`` and fully
charges every sensor it visits. A *plan* is the ordered series of
schedulings covering the monitoring period.

Tours are immutable and shared: Algorithm 3 computes only ``2^K`` distinct
tour sets and repeats them across the period, so a plan's schedulings
reference the same :class:`~repro.tsp.tour.Tour` objects many times and the
cost of each distinct set is computed once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.tsp.tour import Tour

__all__ = ["ChargingScheduling", "SchedulePlan"]


@dataclass(frozen=True)
class ChargingScheduling:
    """One dispatch of the ``q`` mobile chargers: ``(C_j, t_j)``.

    Parameters
    ----------
    time:
        Dispatch time ``t_j`` (charging is instantaneous per the paper's
        timescale-separation assumption).
    tours:
        One closed tour per charger, in depot order. Empty tours (charger
        stays home) are allowed and cost nothing.
    """

    time: float
    tours: tuple[Tour, ...]

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ScheduleError(f"scheduling time must be finite and >= 0, got {self.time}")
        if not self.tours:
            raise ScheduleError("scheduling must contain at least one tour")
        depots = [t.depot for t in self.tours]
        if len(set(depots)) != len(depots):
            raise ScheduleError(f"scheduling has two tours on one depot: {depots}")

    @property
    def q(self) -> int:
        """Number of chargers dispatched (including stay-at-home ones)."""
        return len(self.tours)

    @cached_property
    def charged_sensors(self) -> frozenset[int]:
        """All non-depot nodes visited — the sensors charged at this time."""
        depots = {t.depot for t in self.tours}
        nodes: set[int] = set()
        for t in self.tours:
            nodes |= set(t.order)
        return frozenset(nodes - depots)

    def cost(self, dist: np.ndarray) -> float:
        """Total tour length of this scheduling."""
        d = np.asarray(dist)
        return float(sum(t.cost(d) for t in self.tours))

    def at_time(self, time: float) -> "ChargingScheduling":
        """The same tour set dispatched at a different time (cheap: tours
        are shared, not copied). How Algorithm 3 repeats its block."""
        return ChargingScheduling(time=time, tours=self.tours)


@dataclass(frozen=True)
class SchedulePlan:
    """An ordered series of charging schedulings over a monitoring period.

    Parameters
    ----------
    schedulings:
        The series, strictly increasing in time.
    horizon:
        The monitoring period ``T``; all dispatch times must lie in
        ``[0, horizon)``.
    """

    schedulings: tuple[ChargingScheduling, ...]
    horizon: float

    def __post_init__(self) -> None:
        if self.horizon <= 0 or not math.isfinite(self.horizon):
            raise ScheduleError(f"horizon must be positive and finite, got {self.horizon}")
        times = [s.time for s in self.schedulings]
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise ScheduleError(f"scheduling times not strictly increasing: {a} then {b}")
        if times and times[-1] >= self.horizon:
            raise ScheduleError(
                f"scheduling at t={times[-1]} is not before the horizon {self.horizon}")

    # ------------------------------------------------------------- iteration
    def __len__(self) -> int:
        return len(self.schedulings)

    def __iter__(self) -> Iterator[ChargingScheduling]:
        return iter(self.schedulings)

    def __getitem__(self, i: int) -> ChargingScheduling:
        return self.schedulings[i]

    @property
    def times(self) -> np.ndarray:
        """Dispatch times as an array."""
        return np.asarray([s.time for s in self.schedulings], dtype=np.float64)

    # ----------------------------------------------------------------- costs
    def total_cost(self, dist: np.ndarray) -> float:
        """The service cost: sum of all tour lengths over the plan.

        Repeated tour sets are costed once and multiplied (Algorithm 3's
        plans repeat one block, so this is typically ``2^K`` distinct
        costings, not ``len(plan)``).
        """
        d = np.asarray(dist)
        cache: dict[tuple[Tour, ...], float] = {}
        total = 0.0
        for s in self.schedulings:
            key = s.tours
            if key not in cache:
                cache[key] = s.cost(d)
            total += cache[key]
        return total

    # -------------------------------------------------------------- queries
    def charge_times_of(self, sensor: int) -> list[float]:
        """All times at which ``sensor`` gets charged, in order."""
        return [s.time for s in self.schedulings if sensor in s.charged_sensors]

    def sensors_covered(self) -> frozenset[int]:
        """Every sensor charged at least once by the plan."""
        out: set[int] = set()
        for s in self.schedulings:
            out |= s.charged_sensors
        return frozenset(out)

    def between(self, t0: float, t1: float) -> list[ChargingScheduling]:
        """Schedulings with dispatch time in ``[t0, t1)``."""
        return [s for s in self.schedulings if t0 <= s.time < t1]

    def validate_for(self, network) -> None:
        """Raise :class:`ScheduleError` unless this plan is well-formed for
        ``network``: every tour's depot is one of the network's depots, and
        every charged node is a sensor of the network.

        Guards the serialisation workflow — replaying a plan against the
        wrong network file would otherwise fail late (or worse, charge the
        wrong indices silently when sizes happen to align).
        """
        n, n_nodes = network.n, network.n_nodes
        for s in self.schedulings:
            for tour in s.tours:
                if not network.is_depot(tour.depot):
                    raise ScheduleError(
                        f"plan/network mismatch: tour depot {tour.depot} is not "
                        f"a depot of this network (depots are {n}..{n_nodes - 1})")
                for v in tour.order:
                    if v >= n_nodes:
                        raise ScheduleError(
                            f"plan/network mismatch: node {v} out of range "
                            f"for a network with {n_nodes} nodes")
            bad = [v for v in s.charged_sensors if v >= n]
            if bad:
                raise ScheduleError(
                    f"plan/network mismatch: scheduling at t={s.time} charges "
                    f"non-sensor nodes {bad}")

    # ------------------------------------------------------------ assembly
    @classmethod
    def from_schedulings(cls, schedulings: Iterable[ChargingScheduling],
                         horizon: float) -> "SchedulePlan":
        """Sort (by time) and wrap; rejects duplicate dispatch times."""
        ordered = tuple(sorted(schedulings, key=lambda s: s.time))
        return cls(schedulings=ordered, horizon=horizon)

    def merged_with(self, extra: Sequence[ChargingScheduling]) -> "SchedulePlan":
        """A new plan with ``extra`` schedulings spliced in (adaptive
        re-planning splices patch schedulings before the recomputed tail)."""
        return SchedulePlan.from_schedulings(
            list(self.schedulings) + list(extra), self.horizon)
