"""Lower bounds on the optimal service cost (the paper's Lemma 3).

Lemma 3: for every class level ``k``, the optimal q-rooted TSP cost
``w(D*_k)`` over ``G[R ∪ V_0 ∪ ... ∪ V_k]`` satisfies

    ``w(D*_k) <= OPT / (m * 2^(K-k))``     with ``T = 2 m tau'_n``,

i.e. ``OPT >= m * 2^(K-k) * w(D*_k)``. Substituting
``m * 2^(K-k) = T / (2^(k+1) tau_1)`` and lower-bounding the unknown
``w(D*_k)`` by the (exactly computable) q-rooted MSF weight gives the
certificate this module reports:

    ``OPT >= max_k  T / (2^(k+1) tau_1) * MSF_k``.

This is what the ``abl-lb`` bench uses to show the delivered plans are much
closer to optimal than the worst-case ``2(K+2)`` factor suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantize import Quantization, quantize_cycles
from repro.errors import ScheduleError
from repro.network.model import SensorNetwork
from repro.rooted.msf import q_rooted_msf

__all__ = ["LowerBoundReport", "lemma3_lower_bound", "empirical_ratio"]


@dataclass(frozen=True)
class LowerBoundReport:
    """Per-level certificates and the final bound.

    Parameters
    ----------
    bound:
        ``max_k`` of the per-level bounds — a valid lower bound on OPT.
    per_level:
        ``(K+1,)`` array of the individual level bounds.
    msf_weights:
        ``(K+1,)`` array of q-rooted MSF weights over ``R ∪ V_0..V_k``.
    quantization:
        The class structure used.
    """

    bound: float
    per_level: np.ndarray
    msf_weights: np.ndarray
    quantization: Quantization

    @property
    def argmax_level(self) -> int:
        """The class level whose certificate is tight."""
        return int(np.argmax(self.per_level))


def lemma3_lower_bound(network: SensorNetwork, horizon: float,
                       *, cycles: np.ndarray | None = None) -> LowerBoundReport:
    """Compute the Lemma-3 lower bound on the optimal service cost.

    Parameters
    ----------
    network:
        The WSN instance.
    horizon:
        Monitoring period ``T``.
    cycles:
        Cycle override (defaults to the network's nominal cycles).

    Notes
    -----
    The bound derives from charging *necessity*: every sensor in
    ``V_0 ∪ .. ∪ V_k`` must be visited at least once in every window of
    length ``2^(k+1) tau_1``, and any family of tours visiting all of them
    costs at least the q-rooted MSF weight. The per-window count
    ``T / (2^(k+1) tau_1)`` is taken as a real number (not floored), which
    keeps the bound valid for any alignment of windows.
    """
    if horizon <= 0:
        raise ScheduleError(f"lemma3_lower_bound: horizon must be positive, got {horizon}")
    tau = network.cycles if cycles is None else np.asarray(cycles, dtype=np.float64)
    quant = quantize_cycles(tau)
    depots = [int(i) for i in network.depot_indices]

    msf_weights = np.zeros(quant.K + 1, dtype=np.float64)
    per_level = np.zeros(quant.K + 1, dtype=np.float64)
    prefix: list[int] = []
    for k in range(quant.K + 1):
        prefix.extend(int(s) for s in quant.members(k))
        forest = q_rooted_msf(network.dist, prefix, depots)
        msf_weights[k] = forest.weight(network.dist)
        windows = horizon / (np.ldexp(quant.tau1, k + 1))
        # Fewer than one full window proves nothing for this level.
        per_level[k] = msf_weights[k] * max(windows, 0.0) if windows >= 1.0 else 0.0
    return LowerBoundReport(bound=float(per_level.max()), per_level=per_level,
                            msf_weights=msf_weights, quantization=quant)


def empirical_ratio(plan_cost: float, bound: LowerBoundReport | float) -> float:
    """``plan_cost / lower_bound`` — an upper bound on the true
    approximation ratio achieved on this instance.

    Returns ``inf`` when the lower bound is zero (degenerate instances where
    all sensors sit on depots).
    """
    b = bound.bound if isinstance(bound, LowerBoundReport) else float(bound)
    if b <= 0:
        return float("inf")
    return plan_cost / b
