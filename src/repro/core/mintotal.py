"""Algorithm 3 — ``MinTotalDistance``: the 2(K+2)-approximation.

Given fixed maximum charging cycles, the algorithm:

1. Quantises cycles into power-of-two classes ``V_0 .. V_K``
   (:mod:`repro.core.quantize`), with base cycle ``tau_1``.
2. Builds one *block* of ``2^K`` tour sets: scheduling ``j`` (dispatched at
   ``j * tau_1``) covers ``R ∪ ⋃ {V_k : j mod 2^k = 0}``, each solved with
   the q-rooted TSP 2-approximation (Algorithm 2).
3. Repeats the block across the monitoring period: the scheduling at global
   index ``j`` reuses tour set ``((j-1) mod 2^K) + 1``. No dispatch happens
   at time ``T`` itself (nothing after it needs the charge).

The cost guarantee (paper's Theorem 2) is ``2(K+2) * OPT`` with
``K = floor(log2(tau_max / tau_min))``; in practice the ratio against the
Lemma-3 lower bound is far smaller (see ``benchmarks/bench_ablation_lowerbound.py``).

The heavy lifting is delegated to the staged planner pipeline
(:mod:`repro.plan.pipeline`); passing a
:class:`~repro.plan.cache.PlanArtifactCache` memoizes the per-coverage-set
forests and tours across repeated calls over the same geometry (the
``mtd-var`` re-plan path) and across refine variants. This module keeps the
paper-facing orchestration: quantise, build the block, unroll it over the
monitoring period.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.core.quantize import Quantization, quantize_cycles
from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.errors import ScheduleError
from repro.kernels import KernelBackend
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.plan.cache import PlanArtifactCache
from repro.plan.pipeline import build_block, build_levels
from repro.rooted.qtsp import tours_total_cost
from repro.tsp.tour import Tour

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.store import PlanArtifactStore

__all__ = ["MinTotalDistanceResult", "min_total_distance", "build_block"]


@dataclass(frozen=True)
class MinTotalDistanceResult:
    """Everything Algorithm 3 produces.

    Parameters
    ----------
    plan:
        The full series of charging schedulings for the period.
    quantization:
        The class structure the plan is built on (exposed for analysis and
        for the adaptive heuristic, which reuses it).
    levels:
        The ``K + 1`` distinct tour sets, indexed by coverage level:
        within-block scheduling ``j`` uses
        ``levels[quantization.level_of(j)]``. Shared by reference into
        ``plan``. This stays O(K) even for astronomically wide cycle
        spreads; :attr:`block` is the expanded per-scheduling view.
    """

    plan: SchedulePlan
    quantization: Quantization
    levels: tuple[tuple[Tour, ...], ...]

    @cached_property
    def block(self) -> tuple[tuple[Tour, ...], ...]:
        """The ``b^K`` tour sets of one block; ``block[j - 1]`` is the tour
        tuple of within-block scheduling ``j`` (a view expanded from
        :attr:`levels`, tuples shared by reference).

        Raises :class:`~repro.errors.ScheduleError` when the block is too
        large to enumerate — use :attr:`levels` with
        :meth:`~repro.core.quantize.Quantization.level_of` instead.
        """
        q = self.quantization
        n = q.enumerable_block_size()
        return tuple(self.levels[q.level_of(j)] for j in range(1, n + 1))

    def level_costs(self, dist: np.ndarray) -> np.ndarray:
        """``(K + 1,)`` cost of each level's tour set."""
        d = np.asarray(dist)
        return np.asarray(
            [sum(t.cost(d) for t in tours) for tours in self.levels],
            dtype=np.float64)

    def block_costs(self, dist: np.ndarray) -> np.ndarray:
        """``(b^K,)`` cost of each within-block scheduling's tour set
        (expanded from :meth:`level_costs`; guarded like :attr:`block`)."""
        q = self.quantization
        n = q.enumerable_block_size()
        per_level = self.level_costs(dist)
        return per_level[[q.level_of(j) for j in range(1, n + 1)]]


def min_total_distance(network: SensorNetwork, horizon: float,
                       *, cycles: np.ndarray | None = None,
                       refine: bool = False,
                       start_time: float = 0.0,
                       base: int = 2,
                       cache: PlanArtifactCache | None = None,
                       store: "PlanArtifactStore | None" = None,
                       kernel_backend: "str | KernelBackend | None" = None,
                       obs: Instrumentation | None = None) -> MinTotalDistanceResult:
    """Run Algorithm 3.

    Parameters
    ----------
    network:
        The WSN instance (geometry + nominal cycles).
    horizon:
        Monitoring period ``T``; schedulings are dispatched at
        ``start_time + j * tau_1`` for every ``j >= 1`` with that time
        strictly before ``horizon``. All sensors are assumed fully charged
        at ``start_time``.
    cycles:
        Override for the maximum charging cycles (defaults to the network's
        nominal ones). The adaptive heuristic passes updated estimates here.
    refine:
        Forwarded to the q-rooted TSP solver (2-opt post-pass).
    start_time:
        Offset for re-planning mid-period; ``0`` for the offline case.
    base:
        Geometric base of the cycle quantisation (the paper's algorithm is
        ``base = 2``; the ``abl-base`` bench explores larger bases).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache`. Memoizes the
        per-coverage-set forests and tours so repeated plans over the same
        geometry (``mtd-var`` re-plans; refine-variant pairs) skip
        Algorithms 1–2 on cache hits. The result is tour-for-tour identical
        with or without a cache.
    store:
        Optional :class:`~repro.plan.store.PlanArtifactStore` — the on-disk
        tier under ``cache``. Artifacts computed here are written through
        to it and artifacts persisted by *previous processes* are read back
        on in-memory misses, so a restarted planner replans warm. Also a
        pure accelerator: plans are tour-identical with or without it.
    kernel_backend:
        Kernel backend (:mod:`repro.kernels`) for the numeric hot paths;
        ``None`` resolves via the process default / ``REPRO_KERNEL_BACKEND``.
    obs:
        Optional instrumentation context. Records the ``plan`` span, the
        class structure (``plan.K``, ``plan.class_size`` series), the
        per-scheduling tour-set lengths (``plan.tour_length`` series) and
        the ``plan.schedulings`` counter; forwarded to the block builder
        and Algorithm 2 below it. ``None`` (the default) is a strict no-op.

    Returns
    -------
    MinTotalDistanceResult
        Plan + quantisation + the distinct block. The plan is feasible by
        construction (paper's Lemma 2): every sensor in ``V_k`` is charged
        exactly every ``2^k tau_1 <= tau_i``.
    """
    if horizon <= start_time:
        raise ScheduleError(
            f"min_total_distance: horizon {horizon} must exceed start_time {start_time}")
    tau = network.cycles if cycles is None else np.asarray(cycles, dtype=np.float64)
    if tau.shape != (network.n,):
        raise ScheduleError(
            f"min_total_distance: expected {network.n} cycles, got shape {tau.shape}")
    o = ensure(obs)
    with o.span("plan", n=network.n, horizon=float(horizon)) as sp:
        quant = quantize_cycles(tau, base=base)
        levels = build_levels(network, quant, refine=refine, cache=cache,
                              store=store, kernel_backend=kernel_backend,
                              obs=obs)

        schedulings: list[ChargingScheduling] = []
        j = 1
        while True:
            t = start_time + j * quant.tau1
            if t >= horizon:
                break
            tours = levels[quant.level_of(j)]
            schedulings.append(ChargingScheduling(time=t, tours=tours))
            j += 1
        plan = SchedulePlan(schedulings=tuple(schedulings), horizon=horizon)
        sp.set(K=quant.K, schedulings=len(schedulings))

    if o.enabled:
        o.incr("plan.calls")
        o.incr("plan.K", quant.K)
        o.incr("plan.schedulings", len(schedulings))
        for k in range(quant.K + 1):  # class coverage of the quantisation
            o.observe("plan.class_size", int(quant.members(k).size))
        level_costs = [tours_total_cost(network.dist, tours) for tours in levels]
        for idx in range(len(schedulings)):  # per-scheduling tour-set length
            o.observe("plan.tour_length", level_costs[quant.level_of(idx + 1)])
    return MinTotalDistanceResult(plan=plan, quantization=quant, levels=levels)
