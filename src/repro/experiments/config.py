"""Experiment configuration.

Defaults reproduce the paper's Section VII environment exactly:
1000 m x 1000 m area, base station at the centre, ``q = 5`` depots (first
co-located with the base station), ``T = 1000``, ``tau in [1, 50]``,
``sigma = 2``, ``ΔT = 10``, greedy threshold ``Δl = tau_min``. The paper
averages each point over 100 random topologies; ``n_topologies`` defaults
lower so benches finish in minutes — the CLI exposes the full setting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports nothing
    from repro.sim.sources import ScenarioDynamics  # from experiments, but keep lazy)
from repro.network.cycles import (
    CycleDistribution,
    LinearCycleDistribution,
    RandomCycleDistribution,
)

__all__ = ["ExperimentConfig"]

#: Algorithms the runner knows how to instantiate.
KNOWN_ALGORITHMS = (
    "mtd",          # Algorithm 3 (offline plan), fixed cycles
    "mtd+2opt",     # Algorithm 3 with tour refinement (ablation)
    "mtd-var",        # Section VI adaptive policy (paper-faithful ties)
    "mtd-var+2opt",
    "mtd-var-defer",  # same, with the deferring patch tie-break (improvement)
    "greedy",       # the paper's comparator
    "greedy+2opt",
    "naive",        # charge-everything strawman
    "periodic",     # per-sensor periodic plan without power-of-2 merging
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation cell.

    Parameters
    ----------
    n, q:
        Network size and charger count.
    side:
        Deployment square side (metres).
    horizon:
        Monitoring period ``T``.
    distribution:
        ``"linear"`` or ``"random"`` (Section VII.A's two models).
    tau_min, tau_max, sigma:
        Cycle-distribution parameters.
    variable:
        False = fixed cycles (Figs. 1–2); True = cycles resampled every
        ``slot_duration`` (Figs. 3–6).
    slot_duration:
        ``ΔT`` for variable workloads.
    algorithms:
        Names from :data:`KNOWN_ALGORITHMS` to run on each topology.
    n_topologies:
        Independent random topologies to average over.
    seed:
        Master seed; topology ``r`` uses child stream ``r``.
    strict:
        Raise on any sensor death instead of recording it.
    quantization_base:
        Geometric base of Algorithm 3's cycle classes (paper: 2; the
        ``abl-base`` ablation sweeps it).
    deployment:
        Sensor layout: ``"uniform"`` (paper), ``"clustered"`` or ``"grid"``
        (the ``abl-deployment`` ablation).
    failure_rate, failure_mttr:
        Charger breakdown dynamics (events per unit time per charger, and
        mean time to repair). ``failure_rate = 0`` (the default) keeps the
        paper's assumption of perfectly reliable chargers.
    churn_rate, churn_downtime:
        Sensor membership churn: leave events per unit time across the
        network, and how long each absent sensor stays offline.
    request_rate:
        Poisson on-demand charging-request arrivals per unit time
        (``0`` = none).
    dynamics_seed:
        Seed for the dynamic event streams. The effective per-topology
        stream is derived from ``(dynamics_seed, topology)`` so repetitions
        see independent failure histories while the whole grid stays a
        pure function of its config.
    """

    n: int = 200
    q: int = 5
    side: float = 1000.0
    horizon: float = 1000.0
    distribution: str = "linear"
    tau_min: float = 1.0
    tau_max: float = 50.0
    sigma: float = 2.0
    variable: bool = False
    slot_duration: float = 10.0
    algorithms: tuple[str, ...] = ("mtd", "greedy")
    n_topologies: int = 5
    seed: int = 2014
    strict: bool = False
    quantization_base: int = 2
    deployment: str = "uniform"
    failure_rate: float = 0.0
    failure_mttr: float = 0.0
    churn_rate: float = 0.0
    churn_downtime: float = 0.0
    request_rate: float = 0.0
    dynamics_seed: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0 or self.q <= 0:
            raise ConfigError(f"n and q must be positive, got n={self.n}, q={self.q}")
        if self.horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {self.horizon}")
        if self.distribution not in ("linear", "random"):
            raise ConfigError(
                f"distribution must be 'linear' or 'random', got {self.distribution!r}")
        if self.tau_min <= 0 or self.tau_max < self.tau_min:
            raise ConfigError(
                f"need 0 < tau_min <= tau_max, got [{self.tau_min}, {self.tau_max}]")
        if self.sigma < 0:
            raise ConfigError(f"sigma must be non-negative, got {self.sigma}")
        if self.slot_duration <= 0:
            raise ConfigError(
                f"slot_duration must be positive, got {self.slot_duration}")
        if self.n_topologies <= 0:
            raise ConfigError(
                f"n_topologies must be positive, got {self.n_topologies}")
        if self.deployment not in ("uniform", "clustered", "grid"):
            raise ConfigError(
                f"deployment must be 'uniform', 'clustered' or 'grid', "
                f"got {self.deployment!r}")
        if (not isinstance(self.quantization_base, int)
                or self.quantization_base < 2):
            raise ConfigError(
                f"quantization_base must be an integer >= 2, "
                f"got {self.quantization_base!r}")
        for name in ("failure_rate", "failure_mttr", "churn_rate",
                     "churn_downtime", "request_rate"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        if self.failure_rate > 0 and self.failure_mttr <= 0:
            raise ConfigError(
                f"failure_rate > 0 needs a positive failure_mttr, "
                f"got {self.failure_mttr}")
        if self.churn_rate > 0 and self.churn_downtime <= 0:
            raise ConfigError(
                f"churn_rate > 0 needs a positive churn_downtime, "
                f"got {self.churn_downtime}")
        unknown = set(self.algorithms) - set(KNOWN_ALGORITHMS)
        if unknown:
            raise ConfigError(
                f"unknown algorithms {sorted(unknown)}; known: {KNOWN_ALGORITHMS}")
        for alg in self.algorithms:
            if alg.startswith("mtd-var") and not self.variable:
                raise ConfigError(
                    f"{alg} requires a variable workload (set variable=True)")

    def with_(self, **overrides: Any) -> "ExperimentConfig":
        """Functional update (``dataclasses.replace`` with validation)."""
        return replace(self, **overrides)

    def dynamics(self, topology: int = 0) -> "ScenarioDynamics | None":
        """The topology's :class:`~repro.sim.sources.ScenarioDynamics`.

        Returns ``None`` when every dynamic rate is zero (static run — the
        simulator then skips the event sources entirely). The seed mixes
        ``dynamics_seed`` with the topology index through a
        :class:`~numpy.random.SeedSequence` so repetitions draw
        independent event histories.
        """
        from repro.sim.sources import ScenarioDynamics

        dyn = ScenarioDynamics(
            failure_rate=self.failure_rate, failure_mttr=self.failure_mttr,
            churn_rate=self.churn_rate, churn_downtime=self.churn_downtime,
            request_rate=self.request_rate, seed=self.dynamics_seed)
        if not dyn.active:
            return None
        import numpy as np

        mixed = int(np.random.SeedSequence(
            entropy=[self.dynamics_seed, int(topology)]).generate_state(1)[0])
        return dyn.with_seed(mixed)

    def make_distribution(self) -> CycleDistribution:
        """Instantiate the configured cycle distribution."""
        if self.distribution == "linear":
            return LinearCycleDistribution(
                tau_min=self.tau_min, tau_max=self.tau_max, sigma=self.sigma)
        return RandomCycleDistribution(tau_min=self.tau_min, tau_max=self.tau_max)

    def describe(self) -> str:
        """Short label used in tables and logs."""
        mode = f"var(ΔT={self.slot_duration:g})" if self.variable else "fixed"
        parts = [f"n={self.n} q={self.q} {self.distribution} "
                 f"tau=[{self.tau_min:g},{self.tau_max:g}] sigma={self.sigma:g} "
                 f"{mode} T={self.horizon:g} reps={self.n_topologies}"]
        if self.failure_rate > 0:
            parts.append(f"fail={self.failure_rate:g}/mttr={self.failure_mttr:g}")
        if self.churn_rate > 0:
            parts.append(f"churn={self.churn_rate:g}/down={self.churn_downtime:g}")
        if self.request_rate > 0:
            parts.append(f"req={self.request_rate:g}")
        return " ".join(parts)
