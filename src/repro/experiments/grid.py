"""Multi-parameter grid sweeps.

One-parameter sweeps (:mod:`repro.experiments.sweeps`) regenerate the
paper's figures; exploring *interactions* — does the fleet-size effect
depend on network size? does the tau_max crossover move with q? — needs a
cartesian grid. :func:`grid_sweep` runs a cell at every combination and
:class:`GridResult` exposes the results as labelled axes plus a dense cost
tensor per algorithm, ready for pivot tables or heatmaps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import CellResult, run_cell

__all__ = ["GridResult", "grid_sweep"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of a cartesian sweep.

    Parameters
    ----------
    parameters:
        The swept field names, in axis order.
    values:
        One value tuple per parameter, aligned with ``parameters``.
    cells:
        Dict from value-combination tuple to its cell result.
    """

    parameters: tuple[str, ...]
    values: tuple[tuple[Any, ...], ...]
    cells: Mapping[tuple[Any, ...], CellResult]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(v) for v in self.values)

    def cell(self, **coords: Any) -> CellResult:
        """Look up one cell by parameter values, e.g. ``grid.cell(n=200, q=5)``."""
        try:
            key = tuple(coords[p] for p in self.parameters)
        except KeyError as exc:
            raise ConfigError(
                f"cell lookup needs all of {self.parameters}, missing {exc}") from exc
        if key not in self.cells:
            raise ConfigError(f"no cell at {dict(zip(self.parameters, key))}")
        return self.cells[key]

    def cost_tensor(self, algorithm: str) -> np.ndarray:
        """Dense mean-cost array of shape :attr:`shape` for one algorithm."""
        out = np.empty(self.shape, dtype=np.float64)
        for idx, combo in zip(np.ndindex(*self.shape),
                              itertools.product(*self.values)):
            out[idx] = self.cells[combo].by_name(algorithm).mean_cost
        return out

    def ratio_tensor(self, num: str, den: str) -> np.ndarray:
        """Dense mean-cost-ratio array of shape :attr:`shape`."""
        return self.cost_tensor(num) / self.cost_tensor(den)

    def rows(self, algorithms: Sequence[str] | None = None) -> list[list[Any]]:
        """Long-format rows: one per combination, columns = parameter values
        then per-algorithm mean costs (for CSV export)."""
        algs = (list(algorithms) if algorithms is not None
                else list(next(iter(self.cells.values())).config.algorithms))
        out = []
        for combo in itertools.product(*self.values):
            cell = self.cells[combo]
            out.append(list(combo) + [cell.by_name(a).mean_cost for a in algs])
        return out


def grid_sweep(base: ExperimentConfig, axes: Mapping[str, Sequence[Any]],
               *, progress: Callable[[str], None] | None = None,
               jobs: int = 1) -> GridResult:
    """Run ``base`` at every combination of the given axes.

    Parameters
    ----------
    base:
        The cell template.
    axes:
        Map from config field name to the values it sweeps. Insertion order
        fixes the axis order of the result tensors.
    progress:
        Optional per-cell progress callback.
    jobs:
        Worker processes per cell (forwarded to
        :func:`~repro.experiments.runner.run_cell`; bit-identical results).
    """
    if not axes:
        raise ConfigError("grid_sweep: need at least one axis")
    for name, vals in axes.items():
        if not hasattr(base, name):
            raise ConfigError(f"grid_sweep: ExperimentConfig has no field {name!r}")
        if not vals:
            raise ConfigError(f"grid_sweep: axis {name!r} has no values")
    parameters = tuple(axes.keys())
    values = tuple(tuple(v) for v in axes.values())
    cells: dict[tuple[Any, ...], CellResult] = {}
    for combo in itertools.product(*values):
        cfg = base.with_(**dict(zip(parameters, combo)))
        if progress is not None:
            progress(f"[grid {dict(zip(parameters, combo))}] {cfg.describe()}")
        cells[combo] = run_cell(cfg, jobs=jobs)
    return GridResult(parameters=parameters, values=values, cells=cells)
