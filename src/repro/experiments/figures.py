"""The figure registry: one runnable spec per panel of the paper.

The paper's evaluation (Section VII) consists of six figures / eight
panels; each has a :class:`FigureSpec` here capturing its sweep, fixed
parameters and the qualitative claim the reproduction must match. Benches
in ``benchmarks/`` and the CLI both resolve figures through this registry,
so the definition of every experiment lives in exactly one place.

Default sweep grids are slightly coarser than the paper's (e.g. 6 values of
``tau_max`` instead of 50) and default repetitions lower than the paper's
100 topologies; pass ``full=True`` / a higher ``n_topologies`` for the
dense version — the estimator is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import SweepResult, sweep
from repro.obs.instrument import Instrumentation

__all__ = ["FigureSpec", "FIGURES", "get_figure", "run_figure"]

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class FigureSpec:
    """One panel of the paper's evaluation.

    Parameters
    ----------
    figure_id:
        Short id (``fig1a`` ... ``fig6``, ``abl-*``).
    title:
        The panel caption, paraphrased.
    parameter / values / values_full:
        The sweep: coarse default grid and the paper-dense grid.
    base:
        The cell template with all fixed parameters.
    paper_claim:
        The qualitative result the paper reports for this panel.
    check:
        Optional predicate over the finished sweep encoding the claim
        (used by integration tests and EXPERIMENTS.md generation).
    """

    figure_id: str
    title: str
    parameter: str
    values: tuple
    values_full: tuple
    base: ExperimentConfig
    paper_claim: str
    check: Callable[[SweepResult], bool] | None = None

    def run(self, *, n_topologies: int | None = None, full: bool = False,
            progress: ProgressFn | None = None,
            obs: Instrumentation | None = None,
            jobs: int = 1, cache_dir: str | None = None,
            overrides: dict | None = None) -> SweepResult:
        """Execute the sweep (coarse grid unless ``full``); ``jobs > 1``
        fans each cell's topology jobs onto a process pool, ``cache_dir``
        persists plan artifacts across runs (same results either way).
        ``overrides`` patches the base config before sweeping (e.g.
        ``{"failure_rate": 0.01, "failure_mttr": 5.0}`` re-runs any paper
        panel under charger breakdowns) — it may not override the swept
        parameter itself."""
        base = self.base
        if n_topologies is not None:
            base = base.with_(n_topologies=n_topologies)
        if overrides:
            if self.parameter in overrides:
                raise ConfigError(
                    f"figure {self.figure_id} sweeps {self.parameter!r}; "
                    f"it cannot also be overridden")
            base = base.with_(**overrides)
        vals = self.values_full if full else self.values
        return sweep(base, self.parameter, list(vals), progress=progress,
                     obs=obs, jobs=jobs, cache_dir=cache_dir)


def _ratio_band(num: str, den: str, lo: float, hi: float,
                *, values: Sequence | None = None):
    """Predicate: mean ratio num/den across the sweep lies in [lo, hi]."""

    def check(result: SweepResult) -> bool:
        import numpy as np

        r = result.ratio_series(num, den)
        if values is not None:
            mask = np.isin(np.asarray(result.values), np.asarray(list(values)))
            r = r[mask]
        if r.size == 0:
            # The sweep did not visit the values the claim is about
            # (shrunken smoke runs): vacuously true, no evidence against.
            return True
        return bool(lo <= float(np.mean(r)) <= hi)

    return check


# --------------------------------------------------------------------------
# Paper panels
# --------------------------------------------------------------------------

_N_VALUES = (100, 200, 300, 400, 500)
_TAU_VALUES = (2, 5, 10, 20, 35, 50)
_TAU_VALUES_FULL = tuple(range(2, 51, 2))
_DT_VALUES = (1, 2, 4, 10, 20)
_DT_VALUES_FULL = tuple(range(1, 21))
_SIGMA_VALUES = (0, 2, 10, 25, 50)
_SIGMA_VALUES_FULL = tuple(range(0, 51, 5))

_FIXED_LINEAR = ExperimentConfig(distribution="linear", variable=False,
                                 algorithms=("mtd", "greedy"))
_FIXED_RANDOM = _FIXED_LINEAR.with_(distribution="random")
_VAR_LINEAR = ExperimentConfig(distribution="linear", variable=True,
                               slot_duration=10.0,
                               algorithms=("mtd-var", "greedy"))

FIGURES: dict[str, FigureSpec] = {}


def _register(spec: FigureSpec) -> None:
    if spec.figure_id in FIGURES:
        raise ConfigError(f"duplicate figure id {spec.figure_id}")
    FIGURES[spec.figure_id] = spec


_register(FigureSpec(
    figure_id="fig1a",
    title="Service cost vs network size n (linear distribution, fixed cycles)",
    parameter="n", values=_N_VALUES, values_full=_N_VALUES,
    base=_FIXED_LINEAR,
    paper_claim="MinTotalDistance costs 55-60% of Greedy across n = 100..500",
    check=_ratio_band("mtd", "greedy", 0.45, 0.70),
))

_register(FigureSpec(
    figure_id="fig1b",
    title="Service cost vs network size n (random distribution, fixed cycles)",
    parameter="n", values=_N_VALUES, values_full=_N_VALUES,
    base=_FIXED_RANDOM,
    paper_claim="MinTotalDistance costs 87-93% of Greedy across n = 100..500",
    check=_ratio_band("mtd", "greedy", 0.75, 1.02),
))

_register(FigureSpec(
    figure_id="fig2a",
    title="Service cost vs tau_max (linear distribution, n=200, fixed cycles)",
    parameter="tau_max", values=_TAU_VALUES, values_full=_TAU_VALUES_FULL,
    base=_FIXED_LINEAR.with_(n=200),
    paper_claim=("near-identical for tau_max <= 10, MinTotalDistance wins "
                 "increasingly beyond; gap grows with tau_max"),
    check=_ratio_band("mtd", "greedy", 0.40, 0.75, values=(35, 50)),
))

_register(FigureSpec(
    figure_id="fig2b",
    title="Service cost vs tau_max (random distribution, n=200, fixed cycles)",
    parameter="tau_max", values=_TAU_VALUES, values_full=_TAU_VALUES_FULL,
    base=_FIXED_RANDOM.with_(n=200),
    paper_claim="the two algorithms differ only marginally at all tau_max",
    check=_ratio_band("mtd", "greedy", 0.75, 1.05),
))

_register(FigureSpec(
    figure_id="fig3",
    title="Service cost vs n (linear, VARIABLE cycles, ΔT=10, sigma=2)",
    parameter="n", values=_N_VALUES, values_full=_N_VALUES,
    base=_VAR_LINEAR,
    paper_claim="MinTotalDistance-var stays clearly cheaper than Greedy",
    check=_ratio_band("mtd-var", "greedy", 0.45, 0.80),
))

_register(FigureSpec(
    figure_id="fig4",
    title="Service cost vs tau_max (linear, VARIABLE cycles, n=200, ΔT=10, sigma=2)",
    parameter="tau_max", values=_TAU_VALUES, values_full=_TAU_VALUES_FULL,
    base=_VAR_LINEAR.with_(n=200),
    paper_claim="like Fig 2(a): parity at small tau_max, growing win after",
    check=_ratio_band("mtd-var", "greedy", 0.40, 0.85, values=(35, 50)),
))

_register(FigureSpec(
    figure_id="fig5",
    title="Service cost vs slot length ΔT (linear, variable, n=200, sigma=2)",
    parameter="slot_duration", values=_DT_VALUES, values_full=_DT_VALUES_FULL,
    base=_VAR_LINEAR.with_(n=200),
    paper_claim=("near-identical to Greedy at ΔT=1 (extreme instability); "
                 "costs fall and the gap opens as ΔT grows; already clearly "
                 "ahead by ΔT=4"),
    check=None,  # shape is checked in tests via explicit endpoints
))

_register(FigureSpec(
    figure_id="fig6",
    title="Service cost vs cycle variance sigma (linear, variable, n=200, ΔT=10)",
    parameter="sigma", values=_SIGMA_VALUES, values_full=_SIGMA_VALUES_FULL,
    base=_VAR_LINEAR.with_(n=200),
    paper_claim=("both costs increase with sigma; MinTotalDistance-var "
                 "approaches Greedy as sigma reaches 50"),
    check=None,
))

# --------------------------------------------------------------------------
# Ablations beyond the paper (see DESIGN.md)
# --------------------------------------------------------------------------

_register(FigureSpec(
    figure_id="abl-refine",
    title="Ablation: 2-opt refinement of Algorithm 2 tours",
    parameter="n", values=(100, 200, 300), values_full=_N_VALUES,
    base=_FIXED_LINEAR.with_(algorithms=("mtd", "mtd+2opt", "greedy", "greedy+2opt")),
    paper_claim="(beyond paper) refinement shrinks costs without breaking feasibility",
    check=_ratio_band("mtd+2opt", "mtd", 0.5, 1.0),
))

_register(FigureSpec(
    figure_id="abl-q",
    title="Ablation: sensitivity to charger count q",
    parameter="q", values=(1, 2, 5, 8, 10), values_full=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    base=_FIXED_LINEAR.with_(n=200),
    paper_claim="(beyond paper) more depots reduce cost with diminishing returns",
    check=None,
))

_register(FigureSpec(
    figure_id="abl-deployment",
    title="Ablation: deployment pattern (uniform vs clustered vs grid)",
    parameter="deployment", values=("uniform", "clustered", "grid"),
    values_full=("uniform", "clustered", "grid"),
    base=_FIXED_LINEAR.with_(n=200),
    paper_claim=("(beyond paper) the win should survive non-uniform layouts: "
                 "the class structure depends on cycles, not on where "
                 "sensors stand"),
    check=_ratio_band("mtd", "greedy", 0.30, 0.80),
))

_register(FigureSpec(
    figure_id="abl-base",
    title="Ablation: geometric base b of the cycle quantisation (paper: b=2)",
    parameter="quantization_base", values=(2, 3, 4, 6), values_full=(2, 3, 4, 5, 6, 8),
    base=_FIXED_LINEAR.with_(n=200),
    paper_claim=("(beyond paper) a larger base means fewer classes but cruder "
                 "rounding (up to a factor b of over-charging); b=2 should be "
                 "at or near the sweet spot"),
    check=None,
))

_register(FigureSpec(
    figure_id="abl-tiebreak",
    title="Ablation: patch tie-breaking (paper-faithful 'immediate' vs 'defer')",
    parameter="slot_duration", values=(1, 4, 10, 20), values_full=_DT_VALUES_FULL,
    base=_VAR_LINEAR.with_(n=200,
                           algorithms=("mtd-var", "mtd-var-defer", "greedy")),
    paper_claim=("(beyond paper) deferring equal-cost patch attachments keeps "
                 "the adaptive policy well below Greedy even at ΔT=1, where "
                 "the paper-faithful tie-break degrades to parity"),
    check=_ratio_band("mtd-var-defer", "mtd-var", 0.3, 1.0),
))

_register(FigureSpec(
    figure_id="abl-baselines",
    title="Ablation: naive charge-all and periodic-without-merging baselines",
    parameter="n", values=(100, 200), values_full=_N_VALUES,
    base=_FIXED_LINEAR.with_(algorithms=("mtd", "greedy", "naive", "periodic")),
    paper_claim=("(beyond paper) naive charge-all is far worse than everything; "
                 "periodic-without-merging matches greedy under defaults"),
    check=_ratio_band("mtd", "naive", 0.0, 0.5),
))

_register(FigureSpec(
    figure_id="abl-failures",
    title="Ablation: charger breakdowns (failure rate sweep, MTTR=5)",
    parameter="failure_rate", values=(0.0, 0.005, 0.01, 0.02),
    values_full=(0.0, 0.002, 0.005, 0.01, 0.02, 0.05),
    base=_FIXED_LINEAR.with_(n=200, failure_mttr=5.0),
    paper_claim=("(beyond paper) the offline plan degrades gracefully under "
                 "charger breakdowns: skipped tours raise deaths/cost "
                 "smoothly with the failure rate, with no cliff — and the "
                 "rate-0 endpoint is bit-identical to the static fig2a cell"),
    check=None,
))


def get_figure(figure_id: str) -> FigureSpec:
    """Resolve a figure id; raises :class:`ConfigError` with the catalogue
    when unknown."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise ConfigError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}") from None


def run_figure(figure_id: str, *, n_topologies: int | None = None,
               full: bool = False,
               progress: ProgressFn | None = None,
               obs: Instrumentation | None = None) -> SweepResult:
    """Convenience: ``get_figure(figure_id).run(...)``."""
    return get_figure(figure_id).run(n_topologies=n_topologies, full=full,
                                     progress=progress, obs=obs)
