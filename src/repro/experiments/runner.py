"""Execute one experiment cell: topologies x algorithms -> aggregates.

Every algorithm sees *exactly the same* topologies and workload
realisations (common random numbers), so per-cell cost ratios are paired
comparisons rather than noise against noise — the variance-reduction trick
behind the paper's smooth curves at only 100 repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.baselines.periodic import periodic_per_sensor_plan
from repro.core.mintotal import min_total_distance
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.network.builder import build_paper_network
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.sim.engine import simulate
from repro.sim.policies import ChargingPolicy, PlannedPolicy
from repro.sim.workload import FixedWorkload, ResampledWorkload, Workload

__all__ = ["AlgorithmResult", "CellResult", "run_cell", "make_policy"]

log = get_logger(__name__)


@dataclass(frozen=True)
class AlgorithmResult:
    """Aggregate of one algorithm over all topologies of a cell.

    Parameters
    ----------
    algorithm:
        Algorithm name.
    costs:
        ``(n_topologies,)`` service costs, one per topology.
    deaths:
        ``(n_topologies,)`` death counts (all zeros for a correct run).
    dispatches:
        ``(n_topologies,)`` executed scheduling counts.
    """

    algorithm: str
    costs: np.ndarray
    deaths: np.ndarray
    dispatches: np.ndarray

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def std_cost(self) -> float:
        return float(self.costs.std(ddof=1)) if self.costs.size > 1 else 0.0

    @property
    def total_deaths(self) -> int:
        return int(self.deaths.sum())


@dataclass(frozen=True)
class CellResult:
    """All algorithms' aggregates for one cell.

    ``results`` preserves the config's algorithm order."""

    config: ExperimentConfig
    results: tuple[AlgorithmResult, ...]

    def by_name(self, algorithm: str) -> AlgorithmResult:
        for r in self.results:
            if r.algorithm == algorithm:
                return r
        raise KeyError(f"algorithm {algorithm!r} not in cell "
                       f"(have {[r.algorithm for r in self.results]})")

    def ratio(self, num: str, den: str) -> float:
        """Mean-cost ratio between two algorithms (e.g. MTD / Greedy)."""
        d = self.by_name(den).mean_cost
        return self.by_name(num).mean_cost / d if d > 0 else math.inf

    def ratio_ci(self, num: str, den: str):
        """Paired 95% confidence interval for the per-topology cost ratio
        (valid because all algorithms share topologies and workloads)."""
        from repro.experiments.stats import paired_ratio_ci

        return paired_ratio_ci(self.by_name(num).costs, self.by_name(den).costs)

    def cost_ci(self, algorithm: str):
        """95% t-interval for an algorithm's mean service cost."""
        from repro.experiments.stats import mean_ci

        return mean_ci(self.by_name(algorithm).costs)


def make_policy(name: str, config: ExperimentConfig,
                network: SensorNetwork,
                obs: Instrumentation | None = None) -> ChargingPolicy:
    """Instantiate the named algorithm for one topology.

    Offline algorithms (``mtd``, ``periodic``) are planned against the
    network's *nominal* cycles and wrapped in a
    :class:`~repro.sim.policies.PlannedPolicy`; online ones are returned as
    fresh policy objects. ``obs`` (optional instrumentation) is threaded
    into the planners the algorithm runs.
    """
    refine = name.endswith("+2opt")
    base = name.removesuffix("+2opt")
    if base == "mtd":
        result = min_total_distance(network, config.horizon, refine=refine,
                                    base=config.quantization_base, obs=obs)
        return PlannedPolicy(result.plan)
    if base == "mtd-var":
        return MinTotalDistanceVarPolicy(refine=refine, instrumentation=obs)
    if base == "mtd-var-defer":
        return MinTotalDistanceVarPolicy(refine=refine, patch_tie_break="defer",
                                         instrumentation=obs)
    if base == "greedy":
        # The paper's Δl is the distribution parameter tau_min (not the
        # realised minimum of one topology): under variable workloads a
        # redrawn cycle may dip below the realised minimum, and only the
        # distribution bound protects the decision grid.
        return GreedyOnDemandPolicy(threshold=config.tau_min, refine=refine)
    if base == "naive":
        return NaiveChargeAllPolicy(threshold=config.tau_min)
    if base == "periodic":
        return PlannedPolicy(periodic_per_sensor_plan(
            network, config.horizon, grid=config.tau_min, refine=refine))
    raise ConfigError(f"make_policy: unknown algorithm {name!r}")


def _make_workload(config: ExperimentConfig, network: SensorNetwork,
                   topology_seed: int) -> Workload:
    if not config.variable:
        return FixedWorkload.from_network(network)
    return ResampledWorkload(
        network=network, distribution=config.make_distribution(),
        slot_duration=config.slot_duration, seed=topology_seed)


def run_cell(config: ExperimentConfig,
             obs: Instrumentation | None = None) -> CellResult:
    """Run every configured algorithm on every topology of the cell.

    Topology ``r`` is derived deterministically from ``(config.seed, r)``;
    its workload realisation is shared across algorithms. ``obs``
    (optional instrumentation) wraps the whole cell in a ``cell`` span and
    times each algorithm's plan+simulate work under ``cell.<algorithm>``.
    """
    o = ensure(obs)
    per_alg: dict[str, list[tuple[float, int, int]]] = {a: [] for a in config.algorithms}
    with o.span("cell", n=config.n, q=config.q,
                topologies=config.n_topologies):
        for r in range(config.n_topologies):
            topo_seed = int(np.random.SeedSequence(
                entropy=config.seed, spawn_key=(r,)).generate_state(1)[0])
            network = build_paper_network(
                n=config.n, q=config.q, distribution=config.make_distribution(),
                seed=topo_seed, side=config.side, deployment=config.deployment)
            workload = _make_workload(config, network, topo_seed)
            log.debug("cell topology %d/%d (seed %d)", r + 1,
                      config.n_topologies, topo_seed)
            for name in config.algorithms:
                with o.span(f"cell.{name}", topology=r):
                    policy = make_policy(name, config, network, obs=obs)
                    out = simulate(network, policy, workload, config.horizon,
                                   strict=config.strict, instrumentation=obs)
                per_alg[name].append((out.metrics.service_cost,
                                      out.metrics.n_deaths,
                                      out.metrics.n_dispatches))
    results = tuple(
        AlgorithmResult(
            algorithm=name,
            costs=np.asarray([c for c, _, _ in rows], dtype=np.float64),
            deaths=np.asarray([d for _, d, _ in rows], dtype=np.int64),
            dispatches=np.asarray([p for _, _, p in rows], dtype=np.int64),
        )
        for name, rows in per_alg.items()
    )
    return CellResult(config=config, results=results)
