"""Execute one experiment cell: topologies x algorithms -> aggregates.

Every algorithm sees *exactly the same* topologies and workload
realisations (common random numbers), so per-cell cost ratios are paired
comparisons rather than noise against noise — the variance-reduction trick
behind the paper's smooth curves at only 100 repetitions.

The cell is executed as independent **topology jobs**: topology ``r`` is a
pure function of ``(config, r)``, so jobs run serially or fan out onto a
``ProcessPoolExecutor`` (``jobs > 1``) with bit-identical results — same
seeds, same floating-point operations, same assembly order. Worker
instrumentation comes back as mergeable
:class:`~repro.obs.instrument.StatsSnapshot` payloads folded into the
parent context in topology order. Within a job, all algorithms share one
:class:`~repro.plan.cache.PlanArtifactCache`, so ``mtd`` and ``mtd+2opt``
solve each base tour set once and ``mtd-var`` reuses artifacts across its
re-plans.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.baselines.periodic import periodic_per_sensor_plan
from repro.core.mintotal import min_total_distance
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.network.builder import build_paper_network
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, StatsSnapshot, ensure
from repro.obs.log import get_logger
from repro.plan.cache import PlanArtifactCache
from repro.plan.store import PlanArtifactStore
from repro.sim.engine import simulate
from repro.sim.policies import ChargingPolicy, PlannedPolicy
from repro.sim.workload import FixedWorkload, ResampledWorkload, Workload

__all__ = ["AlgorithmResult", "CellResult", "run_cell", "make_policy"]

log = get_logger(__name__)

#: Row shape one topology job produces per algorithm.
_Row = tuple[float, int, int]  # (service cost, deaths, dispatches)


@dataclass(frozen=True)
class AlgorithmResult:
    """Aggregate of one algorithm over all topologies of a cell.

    Parameters
    ----------
    algorithm:
        Algorithm name.
    costs:
        ``(n_topologies,)`` service costs, one per topology.
    deaths:
        ``(n_topologies,)`` death counts (all zeros for a correct run).
    dispatches:
        ``(n_topologies,)`` executed scheduling counts.
    """

    algorithm: str
    costs: np.ndarray
    deaths: np.ndarray
    dispatches: np.ndarray

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def std_cost(self) -> float:
        return float(self.costs.std(ddof=1)) if self.costs.size > 1 else 0.0

    @property
    def total_deaths(self) -> int:
        return int(self.deaths.sum())


@dataclass(frozen=True)
class CellResult:
    """All algorithms' aggregates for one cell.

    ``results`` preserves the config's algorithm order."""

    config: ExperimentConfig
    results: tuple[AlgorithmResult, ...]

    @cached_property
    def _by_name(self) -> dict[str, AlgorithmResult]:
        return {r.algorithm: r for r in self.results}

    def by_name(self, algorithm: str) -> AlgorithmResult:
        try:
            return self._by_name[algorithm]
        except KeyError:
            raise KeyError(f"algorithm {algorithm!r} not in cell "
                           f"(have {[r.algorithm for r in self.results]})") from None

    def ratio(self, num: str, den: str) -> float:
        """Mean-cost ratio between two algorithms (e.g. MTD / Greedy)."""
        d = self.by_name(den).mean_cost
        return self.by_name(num).mean_cost / d if d > 0 else math.inf

    def ratio_ci(self, num: str, den: str):
        """Paired 95% confidence interval for the per-topology cost ratio
        (valid because all algorithms share topologies and workloads)."""
        from repro.experiments.stats import paired_ratio_ci

        return paired_ratio_ci(self.by_name(num).costs, self.by_name(den).costs)

    def cost_ci(self, algorithm: str):
        """95% t-interval for an algorithm's mean service cost."""
        from repro.experiments.stats import mean_ci

        return mean_ci(self.by_name(algorithm).costs)


def make_policy(name: str, config: ExperimentConfig,
                network: SensorNetwork,
                obs: Instrumentation | None = None,
                cache: PlanArtifactCache | None = None,
                store: "PlanArtifactStore | None" = None) -> ChargingPolicy:
    """Instantiate the named algorithm for one topology.

    Offline algorithms (``mtd``, ``periodic``) are planned against the
    network's *nominal* cycles and wrapped in a
    :class:`~repro.sim.policies.PlannedPolicy`; online ones are returned as
    fresh policy objects. ``obs`` (optional instrumentation) is threaded
    into the planners the algorithm runs, and ``cache`` (optional
    plan-artifact cache) into every staged-pipeline planner — sharing one
    cache across the refine-variant pairs makes ``mtd+2opt`` reuse ``mtd``'s
    base tours. ``store`` (the optional on-disk tier) additionally carries
    ``mtd``'s artifacts across *runs*: a repeat sweep over the same
    geometry replans warm from disk.
    """
    refine = name.endswith("+2opt")
    base = name.removesuffix("+2opt")
    if base == "mtd":
        result = min_total_distance(network, config.horizon, refine=refine,
                                    base=config.quantization_base,
                                    cache=cache, store=store, obs=obs)
        return PlannedPolicy(result.plan)
    if base == "mtd-var":
        return MinTotalDistanceVarPolicy(
            refine=refine, cache=cache if cache is not None else True,
            instrumentation=obs)
    if base == "mtd-var-defer":
        return MinTotalDistanceVarPolicy(
            refine=refine, patch_tie_break="defer",
            cache=cache if cache is not None else True, instrumentation=obs)
    if base == "greedy":
        # The paper's Δl is the distribution parameter tau_min (not the
        # realised minimum of one topology): under variable workloads a
        # redrawn cycle may dip below the realised minimum, and only the
        # distribution bound protects the decision grid.
        return GreedyOnDemandPolicy(threshold=config.tau_min, refine=refine)
    if base == "naive":
        return NaiveChargeAllPolicy(threshold=config.tau_min)
    if base == "periodic":
        return PlannedPolicy(periodic_per_sensor_plan(
            network, config.horizon, grid=config.tau_min, refine=refine))
    raise ConfigError(f"make_policy: unknown algorithm {name!r}")


def _make_workload(config: ExperimentConfig, network: SensorNetwork,
                   topology_seed: int) -> Workload:
    if not config.variable:
        return FixedWorkload.from_network(network)
    return ResampledWorkload(
        network=network, distribution=config.make_distribution(),
        slot_duration=config.slot_duration, seed=topology_seed)


def topology_seed(config: ExperimentConfig, r: int) -> int:
    """Deterministic child seed of topology ``r`` (identical in every
    execution mode — this is what makes parallel runs bit-reproducible)."""
    return int(np.random.SeedSequence(
        entropy=config.seed, spawn_key=(r,)).generate_state(1)[0])


def _run_topology(config: ExperimentConfig, r: int,
                  obs: Instrumentation | None,
                  cache_dir: str | None = None) -> list[_Row]:
    """One topology job: build, plan and simulate every algorithm.

    Returns one ``(cost, deaths, dispatches)`` row per algorithm, in config
    order. Pure in ``(config, r)`` — instrumentation never influences
    results — so the serial loop and pool workers share this code path.
    With ``cache_dir``, offline planners additionally read/write the shared
    on-disk artifact store there (artifacts are content-addressed, so
    concurrent jobs and repeat runs stay bit-identical to cold ones).
    """
    o = ensure(obs)
    topo_seed = topology_seed(config, r)
    network = build_paper_network(
        n=config.n, q=config.q, distribution=config.make_distribution(),
        seed=topo_seed, side=config.side, deployment=config.deployment)
    workload = _make_workload(config, network, topo_seed)
    dynamics = config.dynamics(r)
    plan_cache = PlanArtifactCache()  # shared by all algorithms of this topology
    store = None if cache_dir is None else PlanArtifactStore(cache_dir)
    log.debug("cell topology %d/%d (seed %d)", r + 1,
              config.n_topologies, topo_seed)
    rows: list[_Row] = []
    for name in config.algorithms:
        with o.span(f"cell.{name}", topology=r):
            policy = make_policy(name, config, network, obs=obs,
                                 cache=plan_cache, store=store)
            # Fresh source objects per algorithm, same dynamics seed:
            # every algorithm faces the identical failure/churn/request
            # history (common random numbers), like the shared workload.
            sources = () if dynamics is None else dynamics.build_sources()
            out = simulate(network, policy, workload, config.horizon,
                           strict=config.strict, instrumentation=obs,
                           sources=sources)
        rows.append((out.metrics.service_cost,
                     out.metrics.n_deaths,
                     out.metrics.n_dispatches))
    return rows


def _topology_worker(payload: tuple[ExperimentConfig, int, bool, str | None],
                     ) -> tuple[int, list[_Row], StatsSnapshot | None]:
    """Pool entry point: run one topology job in a worker process.

    Collects into a worker-local instrumentation context (when the parent
    is collecting) and ships it back as a picklable snapshot.
    """
    config, r, collect, cache_dir = payload
    worker_obs = Instrumentation() if collect else None
    rows = _run_topology(config, r, worker_obs, cache_dir)
    return r, rows, None if worker_obs is None else worker_obs.snapshot()


def run_cell(config: ExperimentConfig,
             obs: Instrumentation | None = None,
             *, jobs: int = 1, cache_dir: str | None = None) -> CellResult:
    """Run every configured algorithm on every topology of the cell.

    Topology ``r`` is derived deterministically from ``(config.seed, r)``;
    its workload realisation is shared across algorithms. ``obs``
    (optional instrumentation) wraps the whole cell in a ``cell`` span and
    times each algorithm's plan+simulate work under ``cell.<algorithm>``.

    Parameters
    ----------
    config:
        The cell definition.
    obs:
        Optional instrumentation context.
    jobs:
        Worker processes. ``1`` (default) runs in-process; ``N > 1`` fans
        the topology jobs out on a ``ProcessPoolExecutor``. Results are
        bit-identical to the serial path regardless of ``jobs`` — each job
        derives its own seed and the parent assembles rows in topology
        order — and worker instrumentation is merged back (by topology
        index) into ``obs``.
    cache_dir:
        Optional on-disk :class:`~repro.plan.store.PlanArtifactStore`
        directory shared by every topology job (serial or pooled — the
        store is multi-process safe). Purely an accelerator: results stay
        bit-identical with or without it.
    """
    if jobs < 1:
        raise ConfigError(f"run_cell: jobs must be >= 1, got {jobs}")
    o = ensure(obs)
    per_topology: list[list[_Row]] = []
    with o.span("cell", n=config.n, q=config.q,
                topologies=config.n_topologies, jobs=jobs):
        if jobs == 1 or config.n_topologies == 1:
            for r in range(config.n_topologies):
                per_topology.append(_run_topology(config, r, obs, cache_dir))
        else:
            collect = o.enabled
            payloads = [(config, r, collect, cache_dir)
                        for r in range(config.n_topologies)]
            with ProcessPoolExecutor(
                    max_workers=min(jobs, config.n_topologies)) as pool:
                outcomes = list(pool.map(_topology_worker, payloads))
            outcomes.sort(key=lambda item: item[0])
            for _, rows, snap in outcomes:
                per_topology.append(rows)
                if snap is not None:
                    o.merge(snap)

    results = tuple(
        AlgorithmResult(
            algorithm=name,
            costs=np.asarray([rows[i][0] for rows in per_topology],
                             dtype=np.float64),
            deaths=np.asarray([rows[i][1] for rows in per_topology],
                              dtype=np.int64),
            dispatches=np.asarray([rows[i][2] for rows in per_topology],
                                  dtype=np.int64),
        )
        for i, name in enumerate(config.algorithms)
    )
    return CellResult(config=config, results=results)
