"""Parameter sweeps: the series a paper figure plots.

A sweep varies one :class:`~repro.experiments.config.ExperimentConfig`
field across a list of values and runs the cell at each; the result holds
one :class:`~repro.experiments.runner.CellResult` per value plus helpers to
extract ``(x, mean_cost)`` series per algorithm — exactly what the paper's
figures show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import CellResult, run_cell
from repro.obs.instrument import Instrumentation

__all__ = ["SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a one-parameter sweep.

    Parameters
    ----------
    parameter:
        The swept config field (or virtual parameter name).
    values:
        The sweep values, in run order.
    cells:
        One cell result per value.
    """

    parameter: str
    values: tuple[Any, ...]
    cells: tuple[CellResult, ...]

    @property
    def algorithms(self) -> tuple[str, ...]:
        if not self.cells:
            raise ConfigError(
                f"SweepResult over {self.parameter!r} has no cells; "
                "a sweep must run at least one value before its algorithms "
                "can be read")
        return self.cells[0].config.algorithms

    def series(self, algorithm: str) -> tuple[np.ndarray, np.ndarray]:
        """``(x, mean_cost)`` arrays for one algorithm across the sweep."""
        x = np.asarray(self.values, dtype=np.float64)
        y = np.asarray([c.by_name(algorithm).mean_cost for c in self.cells])
        return x, y

    def ratio_series(self, num: str, den: str) -> np.ndarray:
        """Per-value mean-cost ratio ``num / den``."""
        return np.asarray([c.ratio(num, den) for c in self.cells])

    def deaths(self, algorithm: str) -> np.ndarray:
        """Per-value total death counts (should be all zero)."""
        return np.asarray([c.by_name(algorithm).total_deaths for c in self.cells])

    def rows(self) -> list[list[Any]]:
        """Table rows: one per sweep value, columns = mean cost (and deaths
        if any) per algorithm. Used by the reporting layer and the CLI."""
        out: list[list[Any]] = []
        for v, cell in zip(self.values, self.cells):
            row: list[Any] = [v]
            for alg in self.algorithms:
                r = cell.by_name(alg)
                row.append(r.mean_cost)
            out.append(row)
        return out

    def header(self) -> list[str]:
        return [self.parameter] + [f"{a} (mean cost)" for a in self.algorithms]


def sweep(base: ExperimentConfig, parameter: str, values: Sequence[Any],
          *, progress: Callable[[str], None] | None = None,
          obs: Instrumentation | None = None,
          jobs: int = 1, cache_dir: str | None = None) -> SweepResult:
    """Run ``base`` once per value of ``parameter``.

    Parameters
    ----------
    base:
        The cell template.
    parameter:
        Name of an :class:`ExperimentConfig` field to vary.
    values:
        Values to assign (validated by the config's ``__post_init__``).
    progress:
        Optional callback invoked with a human-readable line before each
        cell (the CLI passes a logger method).
    obs:
        Optional instrumentation context, forwarded to every cell.
    jobs:
        Worker processes per cell, forwarded to
        :func:`~repro.experiments.runner.run_cell`; sweep points still run
        in order (their topology jobs fan out), so results match the serial
        path bit for bit.
    cache_dir:
        Optional on-disk plan-artifact store directory, forwarded to every
        cell; sweep points over shared geometry (and repeat runs of the
        same sweep) then replan warm from disk. Results are unaffected.
    """
    if not values:
        raise ConfigError("sweep: empty value list")
    if not hasattr(base, parameter):
        raise ConfigError(f"sweep: ExperimentConfig has no field {parameter!r}")
    cells: list[CellResult] = []
    for v in values:
        cfg = base.with_(**{parameter: v})
        if progress is not None:
            progress(f"[sweep {parameter}={v}] {cfg.describe()}")
        cells.append(run_cell(cfg, obs=obs, jobs=jobs, cache_dir=cache_dir))
    return SweepResult(parameter=parameter, values=tuple(values), cells=tuple(cells))
