"""Statistics for experiment cells: paired ratios and confidence intervals.

Because every algorithm in a cell runs on the *same* topologies and
workload realisations (common random numbers), the right uncertainty
statement for "MTD costs X% of Greedy" is a **paired** analysis: compute
the ratio per topology, then summarise. These helpers implement that plus
a plain t-interval for means, without depending on scipy (the t quantiles
needed — small samples, 95% — are tabulated; larger samples fall back to
the normal quantile, which is what the t converges to).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["ConfidenceInterval", "mean_ci", "paired_ratio_ci"]

#: Two-sided 95% Student-t quantiles for 1..30 degrees of freedom.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]
_Z95 = 1.960


def _t95(dof: int) -> float:
    if dof < 1:
        raise ConfigError("confidence interval needs at least 2 samples")
    return _T95[dof - 1] if dof <= len(_T95) else _Z95


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric 95% interval.

    Parameters
    ----------
    mean:
        The point estimate.
    lower, upper:
        Interval endpoints (``mean ± half_width``).
    n:
        Sample size behind the estimate.
    """

    mean: float
    lower: float
    upper: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (95% CI, n={self.n})"

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def mean_ci(samples: np.ndarray) -> ConfidenceInterval:
    """95% t-interval for the mean of ``samples``.

    A single sample yields a degenerate zero-width interval (there is no
    variance estimate to widen it with) — callers that need honesty about
    n=1 should check ``ci.n``.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ConfigError(f"mean_ci: need a non-empty 1-D sample, got shape {x.shape}")
    m = float(x.mean())
    if x.size == 1:
        return ConfidenceInterval(mean=m, lower=m, upper=m, n=1)
    sem = float(x.std(ddof=1)) / math.sqrt(x.size)
    h = _t95(x.size - 1) * sem
    return ConfidenceInterval(mean=m, lower=m - h, upper=m + h, n=int(x.size))


def paired_ratio_ci(numerator: np.ndarray,
                    denominator: np.ndarray) -> ConfidenceInterval:
    """95% interval for the mean per-topology cost ratio ``num_i / den_i``.

    The pairing removes between-topology variance, which is why the paper's
    curves are smooth at 100 repetitions — and why this interval is much
    tighter than dividing two independent means.
    """
    a = np.asarray(numerator, dtype=np.float64)
    b = np.asarray(denominator, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ConfigError(
            f"paired_ratio_ci: mismatched shapes {a.shape} vs {b.shape}")
    if np.any(b <= 0):
        raise ConfigError("paired_ratio_ci: non-positive denominator cost")
    return mean_ci(a / b)
