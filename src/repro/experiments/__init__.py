"""Experiment harness: configs, runners, sweeps and the figure registry.

One :class:`~repro.experiments.config.ExperimentConfig` describes a single
evaluation *cell* (network size, distribution, workload volatility,
algorithms, repetition count); :func:`~repro.experiments.runner.run_cell`
executes it over independent topologies and aggregates;
:func:`~repro.experiments.sweeps.sweep` varies one parameter across a cell
and produces the series a paper figure plots; and
:mod:`~repro.experiments.figures` registers one pre-configured sweep per
panel of the paper's evaluation (Figs. 1–6) plus the ablations listed in
DESIGN.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, FigureSpec, get_figure, run_figure
from repro.experiments.runner import AlgorithmResult, CellResult, run_cell
from repro.experiments.stats import ConfidenceInterval, mean_ci, paired_ratio_ci
from repro.experiments.sweeps import SweepResult, sweep

__all__ = [
    "FIGURES",
    "AlgorithmResult",
    "CellResult",
    "ConfidenceInterval",
    "ExperimentConfig",
    "FigureSpec",
    "SweepResult",
    "get_figure",
    "mean_ci",
    "paired_ratio_ci",
    "run_cell",
    "run_figure",
    "sweep",
]
