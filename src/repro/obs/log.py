"""Library-wide logging: the ``repro`` logger hierarchy.

Every module that wants diagnostics asks for a child logger here instead of
printing::

    from repro.obs.log import get_logger
    log = get_logger(__name__)

Nothing is emitted until a handler is attached; the CLI calls
:func:`configure_logging` (driven by ``-v/--verbose``) to install a plain
stdout handler, so library diagnostics read exactly like the CLI's own
output. Embedders may instead configure the standard :mod:`logging` root
however they like — the ``repro`` logger propagates by default until
:func:`configure_logging` takes over.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["log", "get_logger", "configure_logging"]

#: The library's root logger; all module loggers are children of this.
log = logging.getLogger("repro")

#: Marker attribute identifying the handler installed by configure_logging.
_HANDLER_FLAG = "_repro_cli_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """A child of the ``repro`` logger (``name`` may be a module path)."""
    if not name or name == "repro":
        return log
    suffix = name.removeprefix("repro.")
    return log.getChild(suffix)


def configure_logging(verbosity: int = 0, *, stream=None) -> logging.Logger:
    """Attach a message-only stream handler to the ``repro`` logger.

    Parameters
    ----------
    verbosity:
        ``0`` — INFO (progress lines show, as the CLI always did);
        ``1`` or more — DEBUG (per-replan/per-dispatch diagnostics).
    stream:
        Output stream; defaults to the *current* ``sys.stdout`` so test
        harnesses that swap stdout capture the output.

    Idempotent: calling again replaces the previously installed handler, so
    repeated CLI invocations in one process never double-log.
    """
    level = logging.DEBUG if verbosity >= 1 else logging.INFO
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    for existing in list(log.handlers):
        if getattr(existing, _HANDLER_FLAG, False):
            log.removeHandler(existing)
    log.addHandler(handler)
    log.setLevel(level)
    log.propagate = False
    return log
