"""Streaming metrics: delta frames, per-kind merge rules, live aggregation.

The ``watch`` request (:mod:`repro.serve.protocol` v3) upgrades a serve or
fleet connection to a server-push subscription: the server periodically
snapshots its :class:`~repro.obs.instrument.Instrumentation` and ships the
*change* since the previous frame as one NDJSON line. This module owns the
three building blocks:

* :class:`DeltaEmitter` — turns a live instrumentation context into a
  sequence of :class:`WatchFrame` deltas (sequence-numbered, so a consumer
  detects drops);
* :class:`LiveAggregator` — folds delta frames from one or many sources
  (shards) into fleet-wide state, with **per-metric-kind merge rules**;
* table-level merge helpers reused by the fleet router's ``stats`` fan-out,
  so one-shot aggregation and the live stream apply identical semantics.

Merge rules by metric kind
--------------------------
=============  ==========================================================
counters       summed across sources; deltas accumulate, so fleet totals
               stay monotone even across a shard restart (the restarted
               shard's deltas restart from its fresh zero).
gauges         last observed value *per source* plus the fleet ``max`` —
               queue depths (``serve.queue_depth``, ``sim.queue.depth``)
               must never be summed across shards.
timers         running stats merged exactly (count/total/min/max add or
               extremise); **quantiles merged from sketches**
               (:class:`~repro.obs.quantile.QuantileSketch`), never by
               averaging per-shard percentiles.
active spans   current open count per source, summed for the fleet view
               (a gauge-like instantaneous reading, not a counter).
=============  ==========================================================

Everything here is plain data + stdlib so the consumer (``repro watch``)
stays dependency-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.instrument import Instrumentation
from repro.obs.quantile import QuantileSketch

__all__ = [
    "WatchFrame",
    "DeltaEmitter",
    "LiveAggregator",
    "is_frame_line",
    "merge_counter_tables",
    "merge_stat_tables",
    "gauge_table",
    "merge_sketch_tables",
    "quantile_table",
    "DEFAULT_QUANTILES",
]

#: The marker key distinguishing a pushed frame line from a response line.
STREAM_KEY = "stream"
STREAM_NAME = "watch"

#: Quantile fractions reported by default (p50 / p90 / p99).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


@dataclass
class WatchFrame:
    """One NDJSON line of the watch stream.

    ``kind="delta"`` frames (from a serve node) carry *changes* since the
    previous frame: counter deltas, timer count/total deltas plus sketch
    bucket deltas — and the *current* gauge readings and open-span counts.
    ``kind="aggregate"`` frames (from the fleet router) carry cumulative
    fleet totals, per-shard + max gauge views, merged quantiles, and shard
    up/down states.
    """

    source: str
    seq: int
    t: float
    kind: str = "delta"
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, Any] = field(default_factory=dict)
    active: dict[str, Any] = field(default_factory=dict)
    timers: dict[str, dict] = field(default_factory=dict)
    quantiles: dict[str, dict] = field(default_factory=dict)
    shards: dict[str, str] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    #: Aggregate frames only: delta frames the upstream aggregator missed
    #: (sequence gaps in its shard subscriptions). 0 == lossless so far.
    dropped: int = 0

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {STREAM_KEY: STREAM_NAME, "source": self.source,
                               "seq": self.seq, "t": self.t, "kind": self.kind}
        for key in ("counters", "gauges", "active", "timers", "quantiles",
                    "shards", "events", "dropped"):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WatchFrame":
        return cls(source=str(data.get("source", "")),
                   seq=int(data.get("seq", 0)),
                   t=float(data.get("t", 0.0)),
                   kind=str(data.get("kind", "delta")),
                   counters=dict(data.get("counters", {})),
                   gauges=dict(data.get("gauges", {})),
                   active=dict(data.get("active", {})),
                   timers=dict(data.get("timers", {})),
                   quantiles=dict(data.get("quantiles", {})),
                   shards=dict(data.get("shards", {})),
                   events=list(data.get("events", [])),
                   dropped=int(data.get("dropped", 0)))


def is_frame_line(data: Mapping[str, Any]) -> bool:
    """True when a decoded NDJSON line is a pushed watch frame."""
    return data.get(STREAM_KEY) == STREAM_NAME


class DeltaEmitter:
    """Periodic delta snapshots of one live :class:`Instrumentation`.

    Each :meth:`frame` call diffs the context against the state captured at
    the previous call and advances the sequence number. The emitter holds
    only per-metric cumulative copies (no trace events), so a subscription
    adds O(metrics) memory, not O(requests). Callers are responsible for
    invoking :meth:`frame` on the thread/loop that owns the context.
    """

    def __init__(self, obs: Instrumentation, source: str = "serve") -> None:
        self._obs = obs
        self.source = source
        self.seq = 0
        self._counters: dict[str, float] = {}
        self._timer_stats: dict[str, tuple[int, float]] = {}
        self._sketches: dict[str, tuple[int, dict[int, int]]] = {}

    def frame(self, events: Iterable[dict] | None = None) -> WatchFrame:
        """The delta since the previous call (first call: since creation)."""
        obs = self._obs
        self.seq += 1
        counters: dict[str, float] = {}
        for name, value in obs.counters.items():
            delta = value - self._counters.get(name, 0.0)
            if delta:
                counters[name] = delta
                self._counters[name] = value
        timers: dict[str, dict] = {}
        for name, stat in obs.timers.items():
            prev_count, prev_total = self._timer_stats.get(name, (0, 0.0))
            if stat.count == prev_count:
                continue
            entry: dict[str, Any] = {"count": stat.count - prev_count,
                                     "total": stat.total - prev_total}
            self._timer_stats[name] = (stat.count, stat.total)
            sketch = obs.sketches.get(name)
            if sketch is not None:
                prev_zeros, prev_buckets = self._sketches.get(name, (0, {}))
                buckets = {i: n - prev_buckets.get(i, 0)
                           for i, n in sketch.buckets.items()
                           if n != prev_buckets.get(i, 0)}
                entry["sketch"] = {
                    "alpha": sketch.alpha,
                    "zeros": sketch.zeros - prev_zeros,
                    "buckets": {str(i): n for i, n in buckets.items()},
                }
                self._sketches[name] = (sketch.zeros, dict(sketch.buckets))
            timers[name] = entry
        return WatchFrame(
            source=self.source, seq=self.seq, t=time.time(),
            counters=counters, gauges=dict(obs.gauges),
            active=dict(obs.active), timers=timers,
            events=list(events) if events else [])


class LiveAggregator:
    """Folds delta frames from one or many sources into fleet-wide state.

    The fleet router keeps one per watch session (fed by its per-shard
    subscriptions); ``repro watch`` keeps one when pointed at a single
    serve node. Counter totals are accumulated from *deltas*, which is what
    keeps them monotone across shard restarts — a restarted shard's fresh
    context simply contributes new deltas from zero.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.gauges: dict[str, dict[str, float]] = {}
        self.active: dict[str, dict[str, int]] = {}
        self.timer_stats: dict[str, list[float]] = {}
        self.sketches: dict[str, QuantileSketch] = {}
        self.up: dict[str, bool] = {}
        self.frames = 0
        self.dropped = 0
        self._last_seq: dict[str, int] = {}
        self._seq = 0

    # ---------------------------------------------------------------- ingest
    def ingest(self, frame: WatchFrame) -> None:
        """Fold one ``kind="delta"`` frame in (per-kind merge rules)."""
        source = frame.source
        last = self._last_seq.get(source)
        if last is not None and frame.seq > last + 1:
            self.dropped += frame.seq - last - 1
        elif last is not None and frame.seq <= last:
            # A restarted source re-starts its sequence; state resets too.
            self.gauges.pop(source, None)
            self.active.pop(source, None)
        self._last_seq[source] = frame.seq
        self.frames += 1
        self.up[source] = True
        for name, delta in frame.counters.items():
            self.totals[name] = self.totals.get(name, 0.0) + delta
        self.gauges[source] = dict(frame.gauges)
        self.active[source] = dict(frame.active)
        for name, entry in frame.timers.items():
            stat = self.timer_stats.setdefault(name, [0, 0.0])
            stat[0] += entry.get("count", 0)
            stat[1] += entry.get("total", 0.0)
            encoded = entry.get("sketch")
            if encoded:
                incoming = QuantileSketch.from_dict(encoded)
                sketch = self.sketches.get(name)
                if sketch is None:
                    self.sketches[name] = incoming
                else:
                    sketch.merge(incoming)

    def mark_down(self, source: str) -> None:
        """A source (shard) left: keep its counter contribution, drop its
        instantaneous readings (gauges / open spans) from the fleet view."""
        self.up[source] = False
        self.gauges.pop(source, None)
        self.active.pop(source, None)

    def mark_up(self, source: str) -> None:
        self.up[source] = True

    # ----------------------------------------------------------------- views
    def gauge_view(self) -> dict[str, dict[str, Any]]:
        """``{name: {"per_shard": {source: last}, "max": fleet max}}``."""
        return gauge_table(self.gauges)

    def active_view(self) -> dict[str, int]:
        """Open span counts summed across live sources."""
        out: dict[str, int] = {}
        for counts in self.active.values():
            for name, n in counts.items():
                out[name] = out.get(name, 0) + int(n)
        return out

    def quantile_view(self, qs: Iterable[float] = DEFAULT_QUANTILES,
                      ) -> dict[str, dict[str, float]]:
        """Merged-sketch quantiles plus exact count/mean per timer."""
        return quantile_table(self.sketches, self.timer_stats, qs)

    def frame(self, source: str = "fleet",
              events: Iterable[dict] | None = None) -> WatchFrame:
        """An aggregate frame of the current fleet-wide state."""
        self._seq += 1
        return WatchFrame(
            source=source, seq=self._seq, t=time.time(), kind="aggregate",
            counters=dict(self.totals), gauges=self.gauge_view(),
            active=self.active_view(), quantiles=self.quantile_view(),
            shards={s: ("up" if up else "down")
                    for s, up in sorted(self.up.items())},
            events=list(events) if events else [],
            dropped=self.dropped)


# --------------------------------------------------------------------------
# Table-level merge helpers (shared with the router's one-shot `stats`
# fan-out so live and snapshot aggregation can never disagree on semantics).
# --------------------------------------------------------------------------

def merge_counter_tables(tables: Iterable[Mapping[str, float]],
                         ) -> dict[str, float]:
    """Counters: summed."""
    out: dict[str, float] = {}
    for table in tables:
        for name, value in (table or {}).items():
            out[name] = out.get(name, 0.0) + value
    return out


def merge_stat_tables(tables: Iterable[Mapping[str, Mapping[str, float]]],
                      ) -> dict[str, dict[str, float]]:
    """Expanded running stats (count/total/mean/min/max): exact merge.

    Counts and totals add, min/max extremise, the mean is recomputed from
    the merged count/total — never averaged across sources.
    """
    out: dict[str, dict[str, float]] = {}
    for table in tables:
        for name, stat in (table or {}).items():
            agg = out.get(name)
            if agg is None:
                out[name] = {"count": stat.get("count", 0),
                             "total": stat.get("total", 0.0),
                             "min": stat.get("min", float("inf")),
                             "max": stat.get("max", float("-inf"))}
                continue
            agg["count"] += stat.get("count", 0)
            agg["total"] += stat.get("total", 0.0)
            agg["min"] = min(agg["min"], stat.get("min", float("inf")))
            agg["max"] = max(agg["max"], stat.get("max", float("-inf")))
    for agg in out.values():
        agg["mean"] = agg["total"] / agg["count"] if agg["count"] else 0.0
    return out


def gauge_table(per_source: Mapping[str, Mapping[str, float]],
                ) -> dict[str, dict[str, Any]]:
    """Gauges: reported per source plus the fleet max — never summed."""
    out: dict[str, dict[str, Any]] = {}
    for source in sorted(per_source):
        for name, value in (per_source[source] or {}).items():
            entry = out.setdefault(name, {"per_shard": {}, "max": value})
            entry["per_shard"][source] = value
            if value > entry["max"]:
                entry["max"] = value
    return out


def merge_sketch_tables(tables: Iterable[Mapping[str, Mapping]],
                        ) -> dict[str, QuantileSketch]:
    """Encoded sketches from many sources, merged per timer name."""
    out: dict[str, QuantileSketch] = {}
    for table in tables:
        for name, encoded in (table or {}).items():
            incoming = QuantileSketch.from_dict(encoded)
            sketch = out.get(name)
            if sketch is None:
                out[name] = incoming
            else:
                sketch.merge(incoming)
    return out


def quantile_table(sketches: Mapping[str, QuantileSketch],
                   timer_stats: Mapping[str, Any] | None = None,
                   qs: Iterable[float] = DEFAULT_QUANTILES,
                   ) -> dict[str, dict[str, float]]:
    """``{timer: {"count", "mean"?, "p50", "p90", "p99"}}`` from sketches."""
    qs = tuple(qs)
    out: dict[str, dict[str, float]] = {}
    for name in sorted(sketches):
        sketch = sketches[name]
        entry: dict[str, float] = {"count": sketch.count}
        stat = (timer_stats or {}).get(name)
        if stat is not None:
            count, total = stat[0], stat[1]
            if count:
                entry["mean"] = total / count
        entry.update(sketch.quantiles(qs))
        out[name] = entry
    return out
