"""The instrumentation context threaded through every planning layer.

:class:`Instrumentation` aggregates three cheap primitives plus a trace:

* **counters** — monotonically accumulated named totals (:meth:`incr`);
* **value series** — running count/total/min/max of a named measurement
  (:meth:`observe`), e.g. per-scheduling tour lengths;
* **timers / spans** — :meth:`span` returns a context manager that times a
  scoped block on the monotonic clock and files the result both under a
  named timer and as a :class:`~repro.obs.trace.TraceEvent`.

Every public entry point of the library accepts an optional instrumentation
argument defaulting to ``None``; :func:`ensure` maps ``None`` to the
module-level :data:`NULL` singleton, a :class:`NullInstrumentation` whose
methods are all no-ops. Callers therefore never branch on "is profiling
on?" — they call the hooks unconditionally, and the disabled path costs one
attribute lookup and an empty method call. Hot inner loops keep their
hook-call count per *algorithm invocation* (not per iteration) so the
disabled overhead stays within noise (the ``bench_scaling`` guard measures
exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.obs.quantile import QuantileSketch
from repro.obs.trace import BEGIN, EVENT, SPAN, TraceEvent, write_jsonl

__all__ = ["RunningStat", "StatsSnapshot", "Instrumentation",
           "NullInstrumentation", "NULL", "ensure", "trim_trace"]


class RunningStat:
    """Count / total / min / max of a stream of values (no storage)."""

    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def add(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "RunningStat") -> None:
        """Fold another stat into this one (exact for count/total/min/max)."""
        self.count += other.count
        self.total += other.total
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax

    def as_tuple(self) -> tuple[int, float, float, float]:
        """Picklable ``(count, total, min, max)`` form (snapshot encoding)."""
        return (self.count, self.total, self.vmin, self.vmax)

    @classmethod
    def from_tuple(cls, data: tuple[int, float, float, float]) -> "RunningStat":
        stat = cls()
        stat.count, stat.total, stat.vmin, stat.vmax = data
        return stat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunningStat(count={self.count}, total={self.total:.6g}, "
                f"min={self.vmin:.6g}, max={self.vmax:.6g})")


@dataclass(frozen=True)
class StatsSnapshot:
    """A picklable, mergeable view of one instrumentation context.

    Produced by :meth:`Instrumentation.snapshot` and consumed by
    :meth:`Instrumentation.merge`. This is the unit the parallel experiment
    executor ships back from worker processes: each worker collects into its
    own context, snapshots it, and the parent folds the snapshots in (a
    deterministic order — the executor merges by topology index).

    ``timers`` and ``series`` are encoded as ``(count, total, min, max)``
    tuples rather than live :class:`RunningStat` objects so the payload is
    plain data.
    """

    counters: dict[str, float] = field(default_factory=dict)
    timers: dict[str, tuple[int, float, float, float]] = field(default_factory=dict)
    series: dict[str, tuple[int, float, float, float]] = field(default_factory=dict)
    events: tuple[TraceEvent, ...] = ()
    #: Last observed value per series name (gauge semantics; see obs.live).
    gauges: dict[str, float] = field(default_factory=dict)
    #: Timer name -> encoded :class:`~repro.obs.quantile.QuantileSketch`.
    sketches: dict[str, dict] = field(default_factory=dict)


class _Span:
    """Context manager produced by :meth:`Instrumentation.span`."""

    __slots__ = ("_obs", "name", "attrs", "_start", "_mark", "_id")

    def __init__(self, obs: "Instrumentation", name: str, mark: bool,
                 attrs: dict[str, Any]) -> None:
        self._obs = obs
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._mark = mark
        self._id = 0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        obs = self._obs
        obs.active[self.name] = obs.active.get(self.name, 0) + 1
        if self._mark:
            self._id = obs._begin_span(self.name, self._start, self.attrs)
        return self

    def __exit__(self, *exc: object) -> bool:
        obs = self._obs
        left = obs.active.get(self.name, 0) - 1
        if left > 0:
            obs.active[self.name] = left
        else:
            obs.active.pop(self.name, None)
        obs._record_span(self.name, self._start,
                         perf_counter() - self._start, self.attrs,
                         span_id=self._id)
        return False


class _NullSpan:
    """Shared no-op span handed out by the disabled context."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """An enabled instrumentation context (collects everything).

    Attributes
    ----------
    counters:
        Name -> accumulated float total.
    timers:
        Span name -> :class:`RunningStat` over durations (seconds).
    series:
        Observation name -> :class:`RunningStat` over observed values.
    events:
        The trace, in record-completion order (spans append on exit).
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.timers: dict[str, RunningStat] = {}
        self.series: dict[str, RunningStat] = {}
        self.events: list[TraceEvent] = []
        #: Last observed value per series name (gauge reading; obs.live).
        self.gauges: dict[str, float] = {}
        #: Timer name -> mergeable duration sketch (quantiles; obs.live).
        self.sketches: dict[str, QuantileSketch] = {}
        #: Span name -> currently-open count (marked and unmarked spans).
        self.active: dict[str, int] = {}
        self._t0 = perf_counter()
        self._span_seq = 0
        # Span ids whose BEGIN marker was trimmed away while the span was
        # still open; their eventual end record is suppressed so dumped
        # traces never contain an unpairable half (see trim_trace).
        self._muted_spans: set[int] = set()

    # ------------------------------------------------------------- primitives
    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the value series ``name``."""
        stat = self.series.get(name)
        if stat is None:
            stat = self.series[name] = RunningStat()
        stat.add(value)
        self.gauges[name] = float(value)

    def span(self, name: str, _mark: bool = False, **attrs: Any) -> _Span:
        """A context manager timing a scoped block under timer ``name``.

        ``_mark=True`` additionally files a ``BEGIN`` trace marker on entry
        (paired with the span record by a shared ``span`` id attribute), so
        dumped traces show requests that were still in flight. Long-running
        request loops (the serve request handler) opt in; library spans stay
        single-record.
        """
        return _Span(self, name, _mark, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """File an instantaneous trace event."""
        self.events.append(TraceEvent(
            name=name, kind=EVENT, t=perf_counter() - self._t0,
            attrs=attrs))

    # ----------------------------------------------------------- aggregation
    def snapshot(self) -> StatsSnapshot:
        """Freeze the current state into a picklable :class:`StatsSnapshot`."""
        return StatsSnapshot(
            counters=dict(self.counters),
            timers={k: v.as_tuple() for k, v in self.timers.items()},
            series={k: v.as_tuple() for k, v in self.series.items()},
            events=tuple(self.events),
            gauges=dict(self.gauges),
            sketches={k: v.to_dict() for k, v in self.sketches.items()},
        )

    def merge(self, snap: StatsSnapshot) -> None:
        """Fold a snapshot (e.g. from a worker process) into this context.

        Counters add, timers/series merge their running stats, and the
        snapshot's trace events are appended in their recorded order. Span
        timestamps stay relative to the *producing* context's clock; the
        counters and stats are exact regardless.
        """
        for name, value in snap.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, data in snap.timers.items():
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = RunningStat()
            stat.merge(RunningStat.from_tuple(data))
        for name, data in snap.series.items():
            stat = self.series.get(name)
            if stat is None:
                stat = self.series[name] = RunningStat()
            stat.merge(RunningStat.from_tuple(data))
        self.gauges.update(snap.gauges)
        for name, encoded in snap.sketches.items():
            incoming = QuantileSketch.from_dict(encoded)
            sketch = self.sketches.get(name)
            if sketch is None:
                self.sketches[name] = incoming
            else:
                sketch.merge(incoming)
        self.events.extend(snap.events)

    # --------------------------------------------------------------- outputs
    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All span records, optionally filtered by name."""
        return [e for e in self.events
                if e.kind == SPAN and (name is None or e.name == name)]

    def stats_table(self) -> str:
        """Human-readable table of counters, timers and value series."""
        from repro.obs.report import stats_table

        return stats_table(self)

    def write_trace(self, path: str) -> Any:
        """Dump the trace as JSONL; returns the written path."""
        return write_jsonl(self.events, path)

    # -------------------------------------------------------------- internals
    def _begin_span(self, name: str, start: float,
                    attrs: dict[str, Any]) -> int:
        """File a BEGIN marker for a ``_mark=True`` span; returns its id."""
        self._span_seq += 1
        span_id = self._span_seq
        self.events.append(TraceEvent(
            name=name, kind=BEGIN, t=start - self._t0,
            attrs={**attrs, "span": span_id}))
        return span_id

    def _record_span(self, name: str, start: float, dur: float,
                     attrs: dict[str, Any], span_id: int = 0) -> None:
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = RunningStat()
        stat.add(dur)
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch()
        sketch.add(dur)
        if span_id:
            if span_id in self._muted_spans:
                # The BEGIN marker was trimmed while this span was open:
                # suppress the end record so the trace stays pairable (the
                # duration is already in the timer and the sketch).
                self._muted_spans.discard(span_id)
                return
            attrs = {**attrs, "span": span_id}
        self.events.append(TraceEvent(
            name=name, kind=SPAN, t=start - self._t0, dur=dur, attrs=attrs))


class NullInstrumentation(Instrumentation):
    """The disabled context: every hook is a no-op.

    A singleton (:data:`NULL`) stands in whenever a caller passes ``None``,
    so instrumented code never branches. The collections stay permanently
    empty.
    """

    enabled = False

    def incr(self, name: str, value: float = 1.0) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def span(self, name: str, _mark: bool = False,  # type: ignore[override]
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def merge(self, snap: StatsSnapshot) -> None:
        return None


def trim_trace(obs: Instrumentation, max_events: int) -> int:
    """Trim ``obs.events`` to at most ``max_events``, on span-pair boundaries.

    The naive ``del events[:excess]`` can orphan marked spans: a span's
    ``BEGIN`` marker falls inside the trimmed prefix while its end record
    survives (or arrives later), leaving an unpairable half in dumped traces.
    This trims the oldest records but keeps pairs intact:

    * end records whose BEGIN was just trimmed are dropped too;
    * spans still *open* at trim time have their future end record
      suppressed (via ``obs._muted_spans``) when it is eventually filed.

    Every dropped record bumps the ``trace.truncated`` counter. Returns the
    number of events dropped (0 when under the limit).
    """
    events = obs.events
    excess = len(events) - max_events
    if excess <= 0:
        return 0
    trimmed_begins = {e.attrs.get("span") for e in events[:excess]
                      if e.kind == BEGIN}
    trimmed_begins.discard(None)
    del events[:excess]
    dropped = excess
    if trimmed_begins:
        still_open = set(trimmed_begins)
        kept: list[TraceEvent] = []
        for e in events:
            if e.kind == SPAN and e.attrs.get("span") in trimmed_begins:
                still_open.discard(e.attrs["span"])
                dropped += 1
                continue
            kept.append(e)
        events[:] = kept
        obs._muted_spans.update(still_open)
    obs.incr("trace.truncated", dropped)
    return dropped


#: Shared disabled context; what ``instrumentation=None`` resolves to.
NULL = NullInstrumentation()


def ensure(obs: Instrumentation | None) -> Instrumentation:
    """Coerce an optional instrumentation argument to a usable context."""
    return NULL if obs is None else obs
