"""repro.obs — counters, timers, spans and structured traces.

The observability substrate behind every planning layer: an
:class:`~repro.obs.instrument.Instrumentation` context is threaded (always
optionally — ``None`` means the free no-op :data:`NULL`) through Algorithms
1–3, the adaptive re-planner, the simulator and the experiment harness.
See ``docs/OBSERVABILITY.md`` for the span/counter taxonomy and the CLI's
``--profile`` / ``--trace`` flags.

:mod:`repro.obs.live` adds the streaming side: delta frames, a mergeable
quantile sketch (:mod:`repro.obs.quantile`) and the per-metric-kind merge
rules behind the ``watch`` subscription and ``repro watch``.

Note: :mod:`repro.obs.report` (table rendering) is imported lazily by
``Instrumentation.stats_table`` — importing it here would cycle through the
reporting and experiments layers, which themselves use this package.
"""

from repro.obs.instrument import (
    NULL,
    Instrumentation,
    NullInstrumentation,
    RunningStat,
    StatsSnapshot,
    ensure,
    trim_trace,
)
from repro.obs.live import DeltaEmitter, LiveAggregator, WatchFrame
from repro.obs.log import configure_logging, get_logger
from repro.obs.quantile import QuantileSketch
from repro.obs.trace import Trace, TraceEvent, read_jsonl, write_jsonl

__all__ = [
    "NULL",
    "DeltaEmitter",
    "Instrumentation",
    "LiveAggregator",
    "NullInstrumentation",
    "QuantileSketch",
    "RunningStat",
    "StatsSnapshot",
    "Trace",
    "TraceEvent",
    "WatchFrame",
    "configure_logging",
    "ensure",
    "get_logger",
    "read_jsonl",
    "trim_trace",
    "write_jsonl",
]
