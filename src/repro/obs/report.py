"""Render an instrumentation context as aligned plain-text tables.

The CLI's ``--profile`` flag prints exactly this; the reporting layer
appends the timer section to figure reports via
:func:`repro.reporting.table.render_timings`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.instrument import Instrumentation

__all__ = ["stats_table"]


def stats_table(obs: "Instrumentation", *, precision: int = 3) -> str:
    """Counters, timers and value series of ``obs`` as one text block.

    Sections with no data are omitted; a fully empty context renders a
    single placeholder line (so callers can always print the result).
    """
    from repro.reporting.table import format_table, render_timings

    blocks: list[str] = ["== instrumentation =="]
    if obs.counters:
        rows = [[name, float(value)] for name, value in sorted(obs.counters.items())]
        blocks.append("counters:")
        blocks.append(format_table(["name", "count"], rows,
                                   precision=0, indent="  "))
    if obs.timers:
        blocks.append("timers:")
        blocks.append(render_timings(obs.timers, indent="  "))
    if obs.series:
        rows = [
            [name, s.count, s.total, s.mean, s.vmin, s.vmax]
            for name, s in sorted(obs.series.items())
        ]
        blocks.append("values:")
        blocks.append(format_table(
            ["series", "n", "total", "mean", "min", "max"], rows,
            precision=precision, indent="  "))
    if len(blocks) == 1:
        blocks.append("(no instrumentation data recorded)")
    return "\n".join(blocks)
