"""A mergeable quantile sketch over positive durations (no dependencies).

Fleet-wide latency percentiles cannot be computed by averaging per-shard
percentiles — quantiles do not compose. What *does* compose is a histogram:
two histograms over the same bucket boundaries merge by adding counts, and
any quantile of the union is read off the merged counts. :class:`QuantileSketch`
is a DDSketch-style log-bucketed histogram: bucket ``i`` covers values around
``gamma**i`` with ``gamma = (1 + alpha) / (1 - alpha)``, which bounds the
*relative* error of every reported quantile by ``alpha`` (default 1%) while
needing only a handful of sparse buckets per decade of dynamic range.

Sketches serialise to plain JSON (:meth:`to_dict` / :meth:`from_dict`) so
serve workers, shards and the fleet router can ship and merge them over the
NDJSON protocol; the ``watch`` stream ships bucket *deltas* the same way.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["QuantileSketch", "DEFAULT_ALPHA"]

#: Default relative accuracy: reported quantiles are within 1% of exact.
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """Log-bucketed histogram with ``alpha``-relative-accurate quantiles.

    Values ``<= 0`` (a zero-duration span, clock jitter) land in a dedicated
    zero bucket rather than distorting the log scale.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "zeros", "buckets")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.zeros = 0
        self.buckets: dict[int, int] = {}

    # --------------------------------------------------------------- recording
    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if value <= 0.0:
            self.zeros += count
            return
        i = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[i] = self.buckets.get(i, 0) + count

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (exact: bucket counts add)."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha} into {self.alpha}")
        self.zeros += other.zeros
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n

    # ----------------------------------------------------------------- queries
    @property
    def count(self) -> int:
        """Total recorded values."""
        return self.zeros + sum(self.buckets.values())

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``); ``0.0`` when empty.

        Uses the nearest-rank convention on the merged bucket counts; the
        returned value is the geometric midpoint of the selected bucket, so
        its relative error vs. the exact order statistic is at most ``alpha``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * (total - 1)
        if rank < self.zeros:
            return 0.0
        cum = float(self.zeros)
        for i in sorted(self.buckets):
            cum += self.buckets[i]
            if cum > rank:
                # Geometric midpoint of bucket i: 2*gamma^i / (gamma + 1).
                return 2.0 * self._gamma ** i / (self._gamma + 1.0)
        # Floating slack put rank past the last bucket; return its midpoint.
        top = max(self.buckets)
        return 2.0 * self._gamma ** top / (self._gamma + 1.0)

    def quantiles(self, qs: Iterable[float]) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}`` for the requested fractions."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    # ----------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (bucket keys become strings)."""
        return {"alpha": self.alpha, "zeros": self.zeros,
                "buckets": {str(i): n for i, n in self.buckets.items()}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSketch":
        """Inverse of :meth:`to_dict`; tolerant of missing keys."""
        sketch = cls(alpha=float(data.get("alpha", DEFAULT_ALPHA)))
        sketch.zeros = int(data.get("zeros", 0))
        sketch.buckets = {int(i): int(n)
                          for i, n in dict(data.get("buckets", {})).items()}
        return sketch

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.alpha)
        out.zeros = self.zeros
        out.buckets = dict(self.buckets)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
                f"buckets={len(self.buckets)})")
