"""Structured trace events and their JSONL round-trip.

A trace is a flat, time-ordered list of :class:`TraceEvent` records — spans
(named intervals with a duration) and instantaneous events — produced by an
enabled :class:`~repro.obs.instrument.Instrumentation`. The JSONL encoding
is one event per line, so traces stream, concatenate and grep naturally and
can be post-processed without loading this library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["TraceEvent", "Trace", "write_jsonl", "read_jsonl"]

#: The record kinds a trace contains. ``BEGIN`` marks the entry of a
#: ``_mark=True`` span (paired with its ``SPAN`` end record by a shared
#: ``span`` id attribute); plain spans are single ``SPAN`` records.
SPAN = "span"
EVENT = "event"
BEGIN = "begin"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / sequences into plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One record of a trace.

    Parameters
    ----------
    name:
        Span/event name from the taxonomy (see ``docs/OBSERVABILITY.md``).
    kind:
        ``"span"`` (has a duration) or ``"event"`` (instantaneous).
    t:
        Start time in seconds, relative to the owning instrumentation
        context's creation (monotonic clock).
    dur:
        Span duration in seconds; ``None`` for instantaneous events.
    attrs:
        Free-form attributes (JSON-serialisable after coercion).
    """

    name: str
    kind: str
    t: float
    dur: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSONL encoding."""
        out: dict[str, Any] = {"name": self.name, "kind": self.kind,
                               "t": float(self.t)}
        if self.dur is not None:
            out["dur"] = float(self.dur)
        if self.attrs:
            out["attrs"] = _jsonable(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(data["name"]), kind=str(data["kind"]),
                   t=float(data["t"]),
                   dur=None if data.get("dur") is None else float(data["dur"]),
                   attrs=dict(data.get("attrs", {})))


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write ``events`` as one-JSON-object-per-line; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), separators=(",", ":")))
            fh.write("\n")
    return p


class Trace(list):
    """A ``list[TraceEvent]`` with torn-tail metadata from :func:`read_jsonl`.

    ``truncated`` is True when the file ended mid-record (a crashed writer —
    e.g. a killed shard spilling through ``EventSpill`` — tears at most the
    final line); ``partial_line`` carries the skipped fragment for forensics.
    """

    __slots__ = ("truncated", "partial_line")

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        super().__init__(events)
        self.truncated = False
        self.partial_line: str | None = None


def read_jsonl(path: str | Path, *, strict: bool = False) -> Trace:
    """Load a trace written by :func:`write_jsonl` (blank lines skipped).

    A torn *final* line — the one artefact an interrupted append-only writer
    can leave behind — is skipped and surfaced on the returned
    :class:`Trace` (``.truncated`` / ``.partial_line``) instead of raising.
    Corruption anywhere *before* the final record still raises
    ``json.JSONDecodeError`` (or ``KeyError``/``ValueError`` for a
    well-formed line that is not a trace record): mid-file damage means the
    file was not produced by an append-only writer, and silently resuming
    past it would mask real corruption. ``strict=True`` restores the old
    raise-on-anything behaviour.
    """
    lines = Path(path).read_text(encoding="utf-8").split("\n")
    last = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
    out = Trace()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(TraceEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, ValueError):
            if strict or i != last:
                raise
            out.truncated = True
            out.partial_line = line
    return out
