"""Structured trace events and their JSONL round-trip.

A trace is a flat, time-ordered list of :class:`TraceEvent` records — spans
(named intervals with a duration) and instantaneous events — produced by an
enabled :class:`~repro.obs.instrument.Instrumentation`. The JSONL encoding
is one event per line, so traces stream, concatenate and grep naturally and
can be post-processed without loading this library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["TraceEvent", "write_jsonl", "read_jsonl"]

#: The two record kinds a trace contains.
SPAN = "span"
EVENT = "event"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / sequences into plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One record of a trace.

    Parameters
    ----------
    name:
        Span/event name from the taxonomy (see ``docs/OBSERVABILITY.md``).
    kind:
        ``"span"`` (has a duration) or ``"event"`` (instantaneous).
    t:
        Start time in seconds, relative to the owning instrumentation
        context's creation (monotonic clock).
    dur:
        Span duration in seconds; ``None`` for instantaneous events.
    attrs:
        Free-form attributes (JSON-serialisable after coercion).
    """

    name: str
    kind: str
    t: float
    dur: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSONL encoding."""
        out: dict[str, Any] = {"name": self.name, "kind": self.kind,
                               "t": float(self.t)}
        if self.dur is not None:
            out["dur"] = float(self.dur)
        if self.attrs:
            out["attrs"] = _jsonable(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(data["name"]), kind=str(data["kind"]),
                   t=float(data["t"]),
                   dur=None if data.get("dur") is None else float(data["dur"]),
                   attrs=dict(data.get("attrs", {})))


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write ``events`` as one-JSON-object-per-line; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), separators=(",", ":")))
            fh.write("\n")
    return p


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a trace written by :func:`write_jsonl` (blank lines skipped)."""
    out: list[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out
