"""JSON round-trip for :class:`~repro.core.schedule.SchedulePlan`.

Algorithm 3's plans repeat one block of tour sets over the whole period, so
the natural encoding deduplicates: distinct tour *sets* are stored once in
a table and schedulings reference them by index. Loading restores the
sharing, so a reloaded plan costs as fast as a fresh one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.errors import ReproError
from repro.io.files import load_json, save_json
from repro.tsp.tour import Tour

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]


def plan_to_dict(plan: SchedulePlan) -> dict[str, Any]:
    """Deduplicated plain-JSON representation of a plan."""
    table: list[tuple[Tour, ...]] = []
    index_of: dict[tuple[Tour, ...], int] = {}
    refs: list[dict[str, Any]] = []
    for s in plan.schedulings:
        key = s.tours
        if key not in index_of:
            index_of[key] = len(table)
            table.append(key)
        refs.append({"time": s.time, "tours": index_of[key]})
    return {
        "horizon": plan.horizon,
        "tour_sets": [
            [{"depot": t.depot, "order": list(t.order)} for t in tours]
            for tours in table
        ],
        "schedulings": refs,
    }


def plan_from_dict(data: dict[str, Any]) -> SchedulePlan:
    """Inverse of :func:`plan_to_dict` (sharing restored).

    Raises
    ------
    ReproError
        On malformed input; the underlying schedule validators also run, so
        a structurally valid but semantically broken file (duplicate depots,
        unsorted times) is rejected too.
    """
    try:
        table = tuple(
            tuple(Tour(depot=int(t["depot"]), order=tuple(int(v) for v in t["order"]))
                  for t in tours)
            for tours in data["tour_sets"]
        )
        schedulings = tuple(
            ChargingScheduling(time=float(ref["time"]), tours=table[int(ref["tours"])])
            for ref in data["schedulings"]
        )
        horizon = float(data["horizon"])
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ReproError(f"plan_from_dict: malformed plan data ({exc})") from exc
    return SchedulePlan(schedulings=schedulings, horizon=horizon)


def save_plan(plan: SchedulePlan, path: str | Path) -> Path:
    """Serialise a plan to ``path``; returns the resolved path."""
    return save_json(path, "schedule-plan", plan_to_dict(plan))


def load_plan(path: str | Path) -> SchedulePlan:
    """Load a plan previously written by :func:`save_plan`."""
    return plan_from_dict(load_json(path, "schedule-plan"))
