"""Serialisation: JSON round-trips for networks, plans and results.

Lets users pin down a topology, archive the exact plan an algorithm
produced, and reload both later for inspection or re-simulation — the
operational workflow a real deployment needs (plan on a workstation,
ship the schedule to the depot controller).

* :func:`~repro.io.network_json.network_to_dict` /
  :func:`~repro.io.network_json.network_from_dict` — full
  :class:`~repro.network.model.SensorNetwork` round-trip.
* :func:`~repro.io.plan_json.plan_to_dict` /
  :func:`~repro.io.plan_json.plan_from_dict` — full
  :class:`~repro.core.schedule.SchedulePlan` round-trip (tour sharing is
  restored, so repeated blocks stay cheap after reload).
* :func:`~repro.io.files.save_json` / :func:`~repro.io.files.load_json` —
  thin file helpers used by both.
"""

from repro.io.files import load_json, save_json
from repro.io.network_json import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.io.plan_json import load_plan, plan_from_dict, plan_to_dict, save_plan

__all__ = [
    "load_json",
    "load_network",
    "load_plan",
    "network_from_dict",
    "network_to_dict",
    "plan_from_dict",
    "plan_to_dict",
    "save_json",
    "save_network",
    "save_plan",
]
