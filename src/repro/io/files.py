"""File-level JSON helpers with format versioning."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError

__all__ = ["save_json", "load_json", "unwrap_envelope", "FORMAT_VERSION"]

#: Bumped whenever a serialised structure changes incompatibly.
FORMAT_VERSION = 1


def save_json(path: str | Path, kind: str, payload: dict[str, Any]) -> Path:
    """Write ``payload`` wrapped in a ``{kind, version, data}`` envelope.

    Parent directories are created; returns the resolved path.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    envelope = {"kind": kind, "version": FORMAT_VERSION, "data": payload}
    with p.open("w") as fh:
        json.dump(envelope, fh, indent=2)
        fh.write("\n")
    return p.resolve()


def load_json(path: str | Path, kind: str) -> dict[str, Any]:
    """Read an envelope written by :func:`save_json`, checking kind/version.

    Raises
    ------
    ReproError
        On a missing file, wrong kind, or unsupported version — with a
        message saying which.
    """
    p = Path(path)
    if not p.exists():
        raise ReproError(f"load_json: no such file {p}")
    with p.open() as fh:
        envelope = json.load(fh)
    if not isinstance(envelope, dict) or "kind" not in envelope:
        raise ReproError(f"load_json: {p} is not a repro JSON envelope")
    if envelope["kind"] != kind:
        raise ReproError(
            f"load_json: {p} holds a {envelope['kind']!r}, expected {kind!r}")
    if envelope.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"load_json: {p} is format version {envelope.get('version')}, "
            f"this library reads version {FORMAT_VERSION}")
    return envelope["data"]


def unwrap_envelope(data: Any, kind: str) -> Any:
    """Accept either a bare payload or a ``{kind, version, data}`` envelope.

    Files written by :func:`save_json` carry the envelope; in-memory
    documents (``network_to_dict`` / ``plan_to_dict`` output) do not.
    Wire-facing consumers (the planning service) accept both, so a file
    saved with ``repro plan --network-out`` can be shipped to the server
    verbatim.

    Raises
    ------
    ReproError
        When the envelope is present but holds the wrong kind or an
        unsupported version.
    """
    if isinstance(data, dict) and "kind" in data and "data" in data:
        if data["kind"] != kind:
            raise ReproError(
                f"unwrap_envelope: got a {data['kind']!r} envelope, expected {kind!r}")
        if data.get("version") != FORMAT_VERSION:
            raise ReproError(
                f"unwrap_envelope: envelope is format version {data.get('version')}, "
                f"this library reads version {FORMAT_VERSION}")
        return data["data"]
    return data
