"""JSON round-trip for :class:`~repro.network.model.SensorNetwork`."""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.depot import BaseStation, Depot
from repro.network.model import SensorNetwork
from repro.network.sensor import Sensor

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

from repro.io.files import load_json, save_json


def network_to_dict(network: SensorNetwork) -> dict[str, Any]:
    """Plain-JSON-types representation of a network (exact: coordinates,
    cycles and batteries are stored at full float precision)."""
    return {
        "area": [network.area.x0, network.area.y0,
                 network.area.x1, network.area.y1],
        "base_station": list(network.base_station.position.as_tuple()),
        "sensors": [
            {"x": s.position.x, "y": s.position.y,
             "cycle": s.cycle, "battery": s.battery}
            for s in network.sensors
        ],
        "depots": [list(d.position.as_tuple()) for d in network.depots],
    }


def network_from_dict(data: dict[str, Any]) -> SensorNetwork:
    """Inverse of :func:`network_to_dict`.

    Raises
    ------
    ReproError
        On structurally invalid input (missing keys, wrong shapes).
    """
    try:
        area = Rect(*[float(v) for v in data["area"]])
        base = BaseStation(position=Point(*[float(v) for v in data["base_station"]]))
        sensors = tuple(
            Sensor(id=i, position=Point(float(s["x"]), float(s["y"])),
                   cycle=float(s["cycle"]), battery=float(s["battery"]))
            for i, s in enumerate(data["sensors"])
        )
        depots = tuple(
            Depot(id=i, position=Point(float(x), float(y)))
            for i, (x, y) in enumerate(data["depots"])
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"network_from_dict: malformed network data ({exc})") from exc
    return SensorNetwork(sensors=sensors, depots=depots, base_station=base,
                         area=area)


def save_network(network: SensorNetwork, path: str | Path) -> Path:
    """Serialise a network to ``path``; returns the resolved path."""
    return save_json(path, "sensor-network", network_to_dict(network))


def load_network(path: str | Path) -> SensorNetwork:
    """Load a network previously written by :func:`save_network`."""
    return network_from_dict(load_json(path, "sensor-network"))
