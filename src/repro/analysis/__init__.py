"""Analysis utilities: validating the paper's modelling assumptions.

* :mod:`~repro.analysis.timescale` — the paper ignores tour travel time on
  the grounds that a charging task completes "several orders of magnitude"
  faster than a fully-charged sensor's lifetime. These helpers *measure*
  that separation for any concrete plan and vehicle speed, so a user can
  check whether the assumption holds for their deployment before trusting
  the schedule.
"""

from repro.analysis.timescale import TimescaleReport, validate_timescales

__all__ = ["TimescaleReport", "validate_timescales"]
