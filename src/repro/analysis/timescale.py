"""Timescale-separation validation.

The paper's model charges instantaneously: "the time spent by the q mobile
chargers per charging task ... is several orders of magnitude less than the
lifetime of a fully-charged sensor. Therefore, we ignore the time spent per
charging task." That is an *assumption about the deployment*, not a theorem
— it fails if vehicles are slow, the area is large, or cycles are short.

:func:`validate_timescales` takes a concrete plan, a vehicle speed and a
per-sensor charging time and reports, for every scheduling, the ratio of
the round's duration (longest tour's travel + charging time — chargers
drive in parallel) to the tightest deadline among the sensors it charges.
A max ratio ≪ 1 certifies the paper's assumption for this deployment; a
ratio near or above 1 means the schedule would *not* keep sensors alive in
a travel-time-aware simulation, and the operator should add chargers,
shrink the area, or use the min-max balancer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import SchedulePlan
from repro.errors import ConfigError

__all__ = ["TimescaleReport", "validate_timescales"]


@dataclass(frozen=True)
class TimescaleReport:
    """Outcome of the timescale check.

    Parameters
    ----------
    max_ratio:
        Worst round-duration / deadline ratio over the plan. The paper's
        assumption corresponds to ``max_ratio << 1``.
    worst_time:
        Dispatch time of the worst round.
    round_durations:
        Per-scheduling round duration (hours of travel + charging, in the
        plan's time unit).
    deadlines:
        Per-scheduling tightest charged-sensor cycle.
    """

    max_ratio: float
    worst_time: float
    round_durations: np.ndarray
    deadlines: np.ndarray

    @property
    def separated(self) -> bool:
        """Whether the assumption comfortably holds (ratio under 10%)."""
        return self.max_ratio < 0.1

    def summary(self) -> str:
        if self.round_durations.size == 0:
            return "timescales: empty plan, nothing to validate"
        verdict = ("assumption holds" if self.separated else
                   "assumption STRAINED — consider more chargers or balancing")
        return (f"timescales: worst round/deadline ratio {self.max_ratio:.3g} "
                f"at t={self.worst_time:g} ({verdict})")


def validate_timescales(plan: SchedulePlan, dist: np.ndarray,
                        cycles: np.ndarray, *, speed: float,
                        charge_time: float = 0.0) -> TimescaleReport:
    """Measure the travel-time / charging-cycle separation of ``plan``.

    Parameters
    ----------
    plan:
        The charging plan to validate.
    dist:
        Full distance matrix (same units as ``speed``'s numerator).
    cycles:
        ``(n,)`` maximum charging cycles, indexed by sensor id, in the same
        time unit the plan uses.
    speed:
        Vehicle speed in distance units per time unit (e.g. metres per
        paper-time-unit).
    charge_time:
        Time to charge one sensor (added per stop; the paper's ultrafast
        batteries make this ~0).

    Returns
    -------
    TimescaleReport
    """
    if speed <= 0:
        raise ConfigError(f"speed must be positive, got {speed}")
    if charge_time < 0:
        raise ConfigError(f"charge_time must be non-negative, got {charge_time}")
    d = np.asarray(dist)
    tau = np.asarray(cycles, dtype=np.float64)

    durations = np.zeros(len(plan))
    deadlines = np.full(len(plan), np.inf)
    for i, sched in enumerate(plan.schedulings):
        # Chargers drive in parallel: the round lasts as long as its
        # longest tour (travel plus per-stop charging).
        longest = 0.0
        for tour in sched.tours:
            t_travel = tour.cost(d) / speed
            longest = max(longest, t_travel + charge_time * tour.n_stops)
        durations[i] = longest
        charged = sorted(sched.charged_sensors)
        if charged:
            deadlines[i] = float(tau[np.asarray(charged, dtype=np.intp)].min())

    with np.errstate(invalid="ignore"):
        ratios = np.where(deadlines > 0, durations / deadlines, np.inf)
    if ratios.size == 0:
        return TimescaleReport(max_ratio=0.0, worst_time=0.0,
                               round_durations=durations, deadlines=deadlines)
    worst = int(np.argmax(ratios))
    return TimescaleReport(
        max_ratio=float(ratios[worst]),
        worst_time=float(plan.schedulings[worst].time),
        round_durations=durations, deadlines=deadlines)
