"""Registries for named scenarios, scoreable policies and suites.

The scenario evaluation framework has three registries:

* :data:`SCENARIOS` — named, seed-deterministic scenario generators.
  A :class:`ScenarioSpec` wraps an :class:`~repro.experiments.config.ExperimentConfig`
  (topology size, workload, :class:`~repro.sim.sources.ScenarioDynamics`
  rates) plus the framework-only knobs (battery heterogeneity). Topology
  ``r`` of a spec is a pure function of ``(spec, r)`` — the same
  child-seed derivation the parallel experiment executor uses — so
  generation is byte-identical across processes and ``--jobs`` settings.
* :data:`POLICIES` — named policies the scorer runs over the suite. A
  :class:`PolicyEntry` maps a scoreboard name to one of the runner's
  algorithm names (:data:`~repro.experiments.config.KNOWN_ALGORITHMS`),
  with a compatibility predicate (adaptive policies need a variable
  workload). Future policy PRs call :func:`register_policy` once and
  appear on every scorecard.
* :data:`SUITES` — named scenario collections with per-suite overrides
  (``quick`` runs every scenario small enough for CI; ``full`` raises
  sizes and repetitions).

Registration is idempotent-by-name and fails loudly on collisions, so a
plugin registering twice (e.g. under pytest re-imports) surfaces
immediately instead of silently shadowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.experiments.config import KNOWN_ALGORITHMS, ExperimentConfig

__all__ = [
    "ScenarioSpec", "PolicyEntry", "SuiteSpec",
    "SCENARIOS", "POLICIES", "SUITES",
    "register_scenario", "register_policy", "register_suite",
    "get_scenario", "get_suite", "scenario_names", "policy_names",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seed-deterministic scenario generator.

    Parameters
    ----------
    name:
        Registry key (kebab-case, e.g. ``"failure-storm"``).
    description:
        One line for tables and docs.
    config:
        The :class:`~repro.experiments.config.ExperimentConfig` describing
        topology, workload and dynamic-event rates. ``config.algorithms``
        is ignored — the scorer supplies policies from :data:`POLICIES`.
    battery_range:
        Optional ``(lo, hi)``; when set, per-sensor battery capacities are
        drawn uniformly from it (seeded from the topology's child seed),
        replacing the homogeneous ``B = 1`` default.
    """

    name: str
    description: str
    config: ExperimentConfig
    battery_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("ScenarioSpec: name must be non-empty")
        if self.battery_range is not None:
            lo, hi = self.battery_range
            if not (0 < lo <= hi):
                raise ConfigError(
                    f"ScenarioSpec {self.name!r}: battery_range needs "
                    f"0 < lo <= hi, got ({lo}, {hi})")

    @property
    def variable(self) -> bool:
        """Whether the workload resamples cycles (adaptive policies need it)."""
        return self.config.variable

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """Copy with ``ExperimentConfig`` fields overridden (suite scaling)."""
        return ScenarioSpec(name=self.name, description=self.description,
                            config=self.config.with_(**overrides),
                            battery_range=self.battery_range)


@dataclass(frozen=True)
class PolicyEntry:
    """One scoreboard policy.

    Parameters
    ----------
    name:
        Scoreboard name (usually equals ``algorithm``).
    algorithm:
        Runner algorithm id, one of
        :data:`~repro.experiments.config.KNOWN_ALGORITHMS`
        (:func:`~repro.experiments.runner.make_policy` instantiates it).
    requires_variable:
        If true the policy only runs on variable-workload scenarios and
        scores ``null`` elsewhere (e.g. the Section-VI adaptive planner).
    """

    name: str
    algorithm: str
    requires_variable: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in KNOWN_ALGORITHMS:
            raise ConfigError(
                f"PolicyEntry {self.name!r}: unknown algorithm "
                f"{self.algorithm!r}; known: {KNOWN_ALGORITHMS}")

    def compatible(self, spec: ScenarioSpec) -> bool:
        return spec.variable or not self.requires_variable


@dataclass(frozen=True)
class SuiteSpec:
    """A named collection of scenarios with per-suite config overrides.

    ``overrides`` are applied to every member's ``ExperimentConfig``
    (``n_topologies`` is the typical knob); an empty ``scenarios`` tuple
    means "every registered scenario, in registration order".
    """

    name: str
    description: str
    scenarios: tuple[str, ...] = ()
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def members(self) -> tuple[ScenarioSpec, ...]:
        """Resolve to concrete (override-applied) scenario specs."""
        names = self.scenarios if self.scenarios else tuple(SCENARIOS)
        specs = []
        for name in names:
            spec = get_scenario(name)
            if self.overrides:
                spec = spec.with_overrides(**self.overrides)
            specs.append(spec)
        return tuple(specs)


SCENARIOS: dict[str, ScenarioSpec] = {}
POLICIES: dict[str, PolicyEntry] = {}
SUITES: dict[str, SuiteSpec] = {}


def _register(registry: dict, key: str, value: Any, kind: str) -> Any:
    existing = registry.get(key)
    if existing is not None:
        if existing == value:  # idempotent re-registration (re-imports)
            return value
        raise ConfigError(f"{kind} {key!r} is already registered "
                          f"with a different definition")
    registry[key] = value
    return value


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario generator to the registry (idempotent by content)."""
    return _register(SCENARIOS, spec.name, spec, "scenario")


def register_policy(name: str, algorithm: str | None = None, *,
                    requires_variable: bool = False) -> PolicyEntry:
    """Add a policy to the scoreboard (idempotent by content)."""
    entry = PolicyEntry(name=name, algorithm=algorithm or name,
                        requires_variable=requires_variable)
    return _register(POLICIES, entry.name, entry, "policy")


def register_suite(suite: SuiteSpec) -> SuiteSpec:
    """Add a named suite (idempotent by content)."""
    return _register(SUITES, suite.name, suite, "suite")


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(f"unknown scenario {name!r}; registered: "
                          f"{sorted(SCENARIOS)}") from None


def get_suite(name: str) -> SuiteSpec:
    try:
        return SUITES[name]
    except KeyError:
        raise ConfigError(f"unknown suite {name!r}; registered: "
                          f"{sorted(SUITES)}") from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(SCENARIOS)


def policy_names() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(POLICIES)
