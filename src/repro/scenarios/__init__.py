"""Scenario evaluation framework: named scenarios, a policy scoreboard,
and a golden regression gate (``repro score``).

Importing this package registers the six built-in scenarios
(``dense-urban``, ``sparse-wide-area``, ``heterogeneous-batteries``,
``high-churn``, ``failure-storm``, ``request-burst``), the scoreboard
policies, and the ``quick``/``full`` suites.
"""

from repro.scenarios.generators import (
    ScenarioInstance,
    build_instance,
    instance_digest,
)
from repro.scenarios.golden import (
    GATED_KEYS,
    METRICS,
    MetricSpec,
    Regression,
    compare_scorecards,
    default_baseline_path,
)
from repro.scenarios.registry import (
    POLICIES,
    SCENARIOS,
    SUITES,
    PolicyEntry,
    ScenarioSpec,
    SuiteSpec,
    get_scenario,
    get_suite,
    policy_names,
    register_policy,
    register_scenario,
    register_suite,
    scenario_names,
)
from repro.scenarios.score import (
    METRIC_KEYS,
    SCORECARD_KIND,
    Scorecard,
    score_suite,
)

__all__ = [
    "ScenarioSpec", "PolicyEntry", "SuiteSpec",
    "SCENARIOS", "POLICIES", "SUITES",
    "register_scenario", "register_policy", "register_suite",
    "get_scenario", "get_suite", "scenario_names", "policy_names",
    "ScenarioInstance", "build_instance", "instance_digest",
    "Scorecard", "score_suite", "SCORECARD_KIND", "METRIC_KEYS",
    "MetricSpec", "METRICS", "GATED_KEYS", "Regression",
    "compare_scorecards", "default_baseline_path",
]
