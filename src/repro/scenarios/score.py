"""Score every registered policy over a scenario suite.

One ``(scenario, topology)`` pair is an independent **instance job**: it
materialises the instance (:func:`~repro.scenarios.generators.build_instance`),
then runs every compatible policy against the *shared* workload and the
*replayed* dynamic-event history (fresh source objects, same seeds —
common random numbers, the paper's own variance-reduction trick). Jobs
run serially or fan out on a ``ProcessPoolExecutor`` (``jobs > 1``) with
identical results for every gated metric: instances are pure functions of
``(spec, r)`` and rows are folded in ``(scenario, topology)`` order.

Each policy run collects into a fresh, private
:class:`~repro.obs.instrument.Instrumentation` context, which is where
the planner-health dimensions come from: replan counts and latencies from
the ``plan``/``replan`` spans, cache hit rates from the
``plan.cache.tours.*`` counters. Wall-clock dimensions
(``replan_latency_*``) are measured, not derived, so they are reported on
the scorecard but never regression-gated (see
:mod:`repro.scenarios.golden` for which metrics gate).

The result is a :class:`Scorecard`: ``scenario -> policy -> metric``
(``None`` marks an incompatible pair), serialised to ``SCORECARD.json``
through the standard envelope (:mod:`repro.io.files`).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigError
from repro.experiments.runner import make_policy
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.plan.cache import PlanArtifactCache
from repro.scenarios.generators import ScenarioInstance, build_instance
from repro.scenarios.registry import (
    POLICIES,
    PolicyEntry,
    ScenarioSpec,
    get_suite,
    policy_names,
)
from repro.serve.client import percentile
from repro.sim.engine import simulate

__all__ = ["Scorecard", "score_suite", "SCORECARD_KIND", "METRIC_KEYS"]

log = get_logger(__name__)

#: Envelope kind of a serialised scorecard (see :mod:`repro.io.files`).
SCORECARD_KIND = "scorecard"

#: Fixed scoring dimensions, in scorecard column order. Definitions,
#: directions and gate tolerances live in :mod:`repro.scenarios.golden`.
METRIC_KEYS = (
    "service_cost",
    "deaths",
    "dispatches",
    "charger_utilization",
    "energy_delivered",
    "replan_count",
    "replan_latency_p50_ms",
    "replan_latency_p99_ms",
    "cache_hit_rate",
)

#: Raw per-(instance, policy) row — everything the aggregation needs,
#: deterministic except ``replan_durs`` (wall-clock samples).
_Raw = dict[str, Any]


class _LiveSink:
    """NDJSON progress stream for ``repro watch --score`` (no-op when
    ``path`` is ``None``).

    One ``{"stream": "score", "event": ..., "t": ...}`` object per line,
    flushed per event so a tailing consumer sees progress while the pool
    is still folding. Purely additive: the scorecard itself is unchanged
    and the sink never gates."""

    def __init__(self, path: str | Path | None) -> None:
        self._fh = open(path, "w", encoding="utf-8") if path else None

    def emit(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            return
        line = {"stream": "score", "event": event, "t": time.time(), **fields}
        self._fh.write(json.dumps(line, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()


def _run_policy(inst: ScenarioInstance, entry: PolicyEntry) -> _Raw:
    """One policy on one instance, under a private instrumentation context."""
    o = Instrumentation()
    cache = PlanArtifactCache()
    policy = make_policy(entry.algorithm, inst.config, inst.network,
                         obs=o, cache=cache)
    result = simulate(inst.network, policy, inst.workload, inst.config.horizon,
                      strict=False, instrumentation=o,
                      sources=inst.build_sources())
    m = result.metrics
    active = sum(ev.n_active_chargers for ev in m.dispatches)
    # Replan spans: the adaptive policies time each re-plan under
    # ``replan`` (which nests a ``plan`` span); offline planners only
    # record ``plan``. Prefer the outer span so nothing double-counts.
    spans = o.spans("replan") or o.spans("plan")
    hits = int(o.counters.get("plan.cache.tours.hit", 0))
    misses = int(o.counters.get("plan.cache.tours.miss", 0))
    return {
        "cost": float(m.service_cost),
        "deaths": int(m.n_deaths),
        "dispatches": int(m.n_dispatches),
        "active_tours": int(active),
        "tour_slots": int(m.n_dispatches * inst.network.q),
        "energy": float(m.energy_delivered),
        "replans": len(spans),
        "replan_durs": [float(s.dur) for s in spans],
        "cache_hits": hits,
        "cache_misses": misses,
    }


def _run_instance(spec: ScenarioSpec, topology: int,
                  entries: tuple[PolicyEntry, ...]) -> dict[str, _Raw | None]:
    """One instance job: build once, run every compatible policy."""
    inst = build_instance(spec, topology)
    rows: dict[str, _Raw | None] = {}
    for entry in entries:
        rows[entry.name] = _run_policy(inst, entry) if entry.compatible(spec) \
            else None
    return rows


def _instance_worker(payload: tuple[int, ScenarioSpec, int,
                                    tuple[PolicyEntry, ...]]
                     ) -> tuple[int, int, dict[str, _Raw | None]]:
    """Pool entry point (top-level for pickling)."""
    index, spec, topology, entries = payload
    return index, topology, _run_instance(spec, topology, entries)


def _aggregate(rows: list[_Raw]) -> dict[str, float | None]:
    """Fold one policy's per-topology rows into the fixed metric columns."""
    reps = len(rows)
    durs = [d for row in rows for d in row["replan_durs"]]
    tour_slots = sum(row["tour_slots"] for row in rows)
    active = sum(row["active_tours"] for row in rows)
    hits = sum(row["cache_hits"] for row in rows)
    lookups = hits + sum(row["cache_misses"] for row in rows)
    return {
        "service_cost": sum(row["cost"] for row in rows) / reps,
        "deaths": float(sum(row["deaths"] for row in rows)),
        "dispatches": sum(row["dispatches"] for row in rows) / reps,
        "charger_utilization": (active / tour_slots) if tour_slots else 0.0,
        "energy_delivered": sum(row["energy"] for row in rows) / reps,
        "replan_count": sum(row["replans"] for row in rows) / reps,
        "replan_latency_p50_ms": 1e3 * percentile(durs, 50) if durs else None,
        "replan_latency_p99_ms": 1e3 * percentile(durs, 99) if durs else None,
        "cache_hit_rate": (hits / lookups) if lookups else None,
    }


@dataclass(frozen=True)
class Scorecard:
    """``scenario -> policy -> metric`` results for one suite run.

    ``None`` at the policy level marks an incompatible pair (e.g. an
    adaptive policy on a fixed-cycle scenario); ``None`` at the metric
    level marks an undefined dimension (no replans to take a percentile
    of). Ordering is canonical — scenarios in suite order, policies in
    registry order, metrics in :data:`METRIC_KEYS` order — so serialised
    scorecards from equal runs are byte-equal.
    """

    suite: str
    policies: tuple[str, ...]
    scenarios: dict[str, dict[str, dict[str, float | None] | None]] = \
        field(default_factory=dict)

    # ------------------------------------------------------------ accessors
    def metrics(self, scenario: str, policy: str) -> dict[str, float | None] | None:
        return self.scenarios.get(scenario, {}).get(policy)

    @property
    def n_cells(self) -> int:
        """Scored (scenario, policy) pairs, skips excluded."""
        return sum(1 for by_policy in self.scenarios.values()
                   for m in by_policy.values() if m is not None)

    def gated_view(self, gated_keys: tuple[str, ...]) -> dict[str, Any]:
        """The deterministic sub-scorecard (regression-gated metrics only).

        Two runs of the same suite at the same code must produce equal
        gated views regardless of ``--jobs``, machine load or wall time —
        the determinism test asserts exactly this.
        """
        out: dict[str, Any] = {}
        for scenario, by_policy in self.scenarios.items():
            out[scenario] = {
                policy: None if m is None
                else {k: m[k] for k in gated_keys if k in m}
                for policy, m in by_policy.items()
            }
        return out

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        return {"suite": self.suite, "policies": list(self.policies),
                "metrics": list(METRIC_KEYS), "scenarios": self.scenarios}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scorecard":
        try:
            return cls(suite=str(data["suite"]),
                       policies=tuple(data["policies"]),
                       scenarios={str(s): {str(p): (None if m is None else dict(m))
                                           for p, m in by_policy.items()}
                                  for s, by_policy in data["scenarios"].items()})
        except (KeyError, TypeError, AttributeError) as exc:
            raise ConfigError(f"malformed scorecard document ({exc})") from exc

    def save(self, path: str | Path) -> Path:
        from repro.io.files import save_json

        return save_json(path, SCORECARD_KIND, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "Scorecard":
        from repro.io.files import load_json

        return cls.from_dict(load_json(path, SCORECARD_KIND))


def score_suite(suite: str = "quick",
                policies: tuple[str, ...] | None = None, *,
                jobs: int = 1,
                obs: Instrumentation | None = None,
                progress: Callable[[str], None] | None = None,
                live: str | Path | None = None) -> Scorecard:
    """Run every (registered or selected) policy over the suite.

    Parameters
    ----------
    suite:
        Registered suite name (``"quick"``, ``"full"``, ...).
    policies:
        Optional subset of registered policy names (default: all).
    jobs:
        Worker processes for the instance jobs. Gated metrics are
        identical for every value of ``jobs``.
    obs:
        Optional instrumentation: counts ``score.instances`` /
        ``score.cells`` and wraps the run in a ``score`` span.
    progress:
        Optional per-scenario progress callback.
    live:
        Optional path for a live NDJSON progress stream (``start`` /
        ``instance`` / ``scenario`` / ``done`` events) that
        ``repro watch --score`` tails while the run is in flight.
    """
    if jobs < 1:
        raise ConfigError(f"score_suite: jobs must be >= 1, got {jobs}")
    suite_spec = get_suite(suite)
    specs = suite_spec.members()
    selected = tuple(policies) if policies is not None else policy_names()
    unknown = set(selected) - set(POLICIES)
    if unknown:
        raise ConfigError(f"unknown policies {sorted(unknown)}; "
                          f"registered: {sorted(POLICIES)}")
    if not selected:
        raise ConfigError("score_suite: no policies selected")
    entries = tuple(POLICIES[name] for name in selected)

    o = ensure(obs)
    sink = _LiveSink(live)
    payloads = [(i, spec, r, entries)
                for i, spec in enumerate(specs)
                for r in range(spec.config.n_topologies)]
    results: dict[tuple[int, int], dict[str, _Raw | None]] = {}
    try:
        sink.emit("start", suite=suite, policies=list(selected),
                  scenarios=[spec.name for spec in specs],
                  total_instances=len(payloads))
        n_done = 0
        with o.span("score", suite=suite, scenarios=len(specs),
                    policies=len(entries), jobs=jobs):
            if jobs == 1 or len(payloads) == 1:
                for payload in payloads:
                    index, r, rows = _instance_worker(payload)
                    results[(index, r)] = rows
                    o.incr("score.instances")
                    n_done += 1
                    sink.emit("instance", done=n_done, total=len(payloads),
                              scenario=specs[index].name, topology=r)
            else:
                with ProcessPoolExecutor(
                        max_workers=min(jobs, len(payloads))) as pool:
                    for index, r, rows in pool.map(_instance_worker, payloads):
                        results[(index, r)] = rows
                        o.incr("score.instances")
                        n_done += 1
                        sink.emit("instance", done=n_done, total=len(payloads),
                                  scenario=specs[index].name, topology=r)

        scenarios: dict[str, dict[str, dict[str, float | None] | None]] = {}
        for i, spec in enumerate(specs):
            per_policy: dict[str, dict[str, float | None] | None] = {}
            for entry in entries:
                rows = [results[(i, r)][entry.name]
                        for r in range(spec.config.n_topologies)]
                if any(row is None for row in rows):
                    per_policy[entry.name] = None
                    continue
                per_policy[entry.name] = _aggregate(rows)  # type: ignore[arg-type]
                o.incr("score.cells")
            scenarios[spec.name] = per_policy
            sink.emit("scenario", index=i + 1, total=len(specs),
                      scenario=spec.name, cells=per_policy)
            if progress is not None:
                scored = sum(1 for m in per_policy.values() if m is not None)
                progress(f"[{i + 1}/{len(specs)}] {spec.name}: "
                         f"{scored}/{len(entries)} policies scored")
        card = Scorecard(suite=suite, policies=selected, scenarios=scenarios)
        sink.emit("done", cells=card.n_cells)
        return card
    finally:
        sink.close()
