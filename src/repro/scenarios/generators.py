"""Scenario instance generation and the six built-in scenarios.

:func:`build_instance` materialises topology ``r`` of a
:class:`~repro.scenarios.registry.ScenarioSpec` into a
:class:`ScenarioInstance` — network, workload, dynamics — as a pure
function of ``(spec, r)``. It reuses the experiment runner's child-seed
derivation (:func:`~repro.experiments.runner.topology_seed`), so a
scenario scored serially, scored under ``--jobs N``, or rebuilt in a test
process produces byte-identical topologies and (for a fixed policy)
byte-identical event streams. :func:`instance_digest` packages exactly
that witness — sha256 of the topology document and of a canonical greedy
run's merged event log — for determinism tests and ``--jobs``
differentials.

Built-in scenarios (all registered at import):

=========================  =====================================================
``dense-urban``            clustered hotspots packed into a small square
``sparse-wide-area``       few sensors spread over kilometres, fixed cycles
``heterogeneous-batteries``uniform layout, capacities drawn from ``[0.5, 3]``
``high-churn``             sensors leaving/rejoining throughout the run
``failure-storm``          charger breakdowns + churn + requests simultaneously
``request-burst``          heavy Poisson on-demand charging-request arrivals
=========================  =====================================================

Sizes are deliberately small (24–48 sensors): the suite is a regression
*gate*, run on every PR; coverage across regimes matters more than scale
(the ``full`` suite raises both size and repetitions).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import topology_seed
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.network.model import SensorNetwork
from repro.scenarios.registry import (
    ScenarioSpec,
    SuiteSpec,
    register_policy,
    register_scenario,
    register_suite,
)
from repro.sim.engine import simulate
from repro.sim.sources import ScenarioDynamics
from repro.sim.workload import FixedWorkload, ResampledWorkload, Workload

__all__ = ["ScenarioInstance", "build_instance", "instance_digest"]

#: Spawn key for the battery-heterogeneity stream — distinct from the
#: deployment/depot/cycle substreams spawned inside the network builder.
_BATTERY_SPAWN_KEY = (101,)


@dataclass(frozen=True)
class ScenarioInstance:
    """One materialised topology of a scenario.

    Parameters
    ----------
    spec:
        The generating spec (with any suite overrides already applied).
    topology:
        Repetition index ``r``.
    network:
        The built :class:`~repro.network.model.SensorNetwork`.
    workload:
        Fixed or resampled workload, shared by every policy scored on this
        instance (common random numbers).
    dynamics:
        The instance's :class:`~repro.sim.sources.ScenarioDynamics` with
        its per-topology mixed seed, or ``None`` for static scenarios.
        Callers build *fresh* sources per run
        (``dynamics.build_sources()``) so every policy replays the
        identical failure/churn/request history.
    """

    spec: ScenarioSpec
    topology: int
    network: SensorNetwork
    workload: Workload
    dynamics: ScenarioDynamics | None

    @property
    def config(self) -> ExperimentConfig:
        return self.spec.config

    def build_sources(self) -> tuple:
        """Fresh (unprimed) event sources for one simulation run."""
        return () if self.dynamics is None else self.dynamics.build_sources()


def _heterogeneous_batteries(network: SensorNetwork, topo_seed: int,
                             battery_range: tuple[float, float]) -> SensorNetwork:
    """Replace unit batteries with capacities drawn from ``battery_range``.

    Geometry, depots and cycles are untouched — only ``Sensor.battery``
    changes, so the geometry fingerprint (and every cached tour) is shared
    with the homogeneous twin. The draw is seeded from the topology's
    child seed under a dedicated spawn key, independent of the builder's
    own substreams.
    """
    lo, hi = battery_range
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=topo_seed, spawn_key=_BATTERY_SPAWN_KEY))
    batteries = rng.uniform(lo, hi, size=network.n)
    sensors = tuple(dataclasses.replace(s, battery=float(b))
                    for s, b in zip(network.sensors, batteries))
    return SensorNetwork(sensors=sensors, depots=network.depots,
                         base_station=network.base_station, area=network.area)


def build_instance(spec: ScenarioSpec, topology: int = 0) -> ScenarioInstance:
    """Materialise topology ``r`` of ``spec`` (pure in ``(spec, r)``)."""
    config = spec.config
    topo_seed = topology_seed(config, topology)
    network = build_paper_network(
        n=config.n, q=config.q, distribution=config.make_distribution(),
        seed=topo_seed, side=config.side, deployment=config.deployment)
    if spec.battery_range is not None:
        network = _heterogeneous_batteries(network, topo_seed, spec.battery_range)
    if config.variable:
        workload: Workload = ResampledWorkload(
            network=network, distribution=config.make_distribution(),
            slot_duration=config.slot_duration, seed=topo_seed)
    else:
        workload = FixedWorkload.from_network(network)
    return ScenarioInstance(spec=spec, topology=topology, network=network,
                            workload=workload, dynamics=config.dynamics(topology))


def instance_digest(spec: ScenarioSpec, topology: int = 0, *,
                    events: bool = True) -> dict[str, str]:
    """Determinism witness of one instance: content hashes of everything
    the generator produced.

    Returns ``{"topology": sha256, "events": sha256}`` where ``topology``
    hashes the canonical network document (coordinates, cycles, batteries
    at full float precision) and ``events`` hashes the merged per-event
    JSONL of a canonical greedy run — slot boundaries, dispatches,
    charges, deaths, plus every failure/churn/request event the dynamic
    sources emitted. Two processes (or ``--jobs`` modes) generated the
    same instance iff these digests match; the determinism test and the
    score CLI's cross-process guarantees rest on exactly this function
    being importable (and equal) everywhere.
    """
    inst = build_instance(spec, topology)
    doc = json.dumps(network_to_dict(inst.network), sort_keys=True,
                     separators=(",", ":"))
    out = {"topology": hashlib.sha256(doc.encode()).hexdigest()}
    if events:
        policy = GreedyOnDemandPolicy(threshold=inst.config.tau_min)
        result = simulate(inst.network, policy, inst.workload,
                          inst.config.horizon, sources=inst.build_sources())
        stream = result.metrics.event_log_jsonl()
        out["events"] = hashlib.sha256(stream.encode()).hexdigest()
    return out


# --------------------------------------------------------------------------
# Built-in scenarios. One shared base keeps the suite paper-flavoured
# (linear cycle distribution, depot 0 on the base station) while each
# scenario stresses one regime. All seeds are fixed: the suite is a gate,
# not a sampler.
# --------------------------------------------------------------------------

_BASE = ExperimentConfig(
    n=36, q=4, side=1000.0, horizon=120.0,
    distribution="linear", tau_min=2.0, tau_max=40.0, sigma=2.0,
    variable=True, slot_duration=10.0,
    algorithms=("mtd", "greedy"),  # unused by the scorer (POLICIES rules)
    n_topologies=2, seed=20140808)

register_scenario(ScenarioSpec(
    name="dense-urban",
    description="clustered hotspots packed into a 300 m square",
    config=_BASE.with_(n=48, side=300.0, deployment="clustered")))

register_scenario(ScenarioSpec(
    name="sparse-wide-area",
    description="24 sensors across 3 km, fixed cycles (offline regime)",
    config=_BASE.with_(n=24, q=3, side=3000.0, variable=False,
                       tau_min=5.0, tau_max=50.0)))

register_scenario(ScenarioSpec(
    name="heterogeneous-batteries",
    description="uniform layout, battery capacities drawn from [0.5, 3.0]",
    config=_BASE,
    battery_range=(0.5, 3.0)))

register_scenario(ScenarioSpec(
    name="high-churn",
    description="sensors leave and rejoin all run long (rate 0.15, down 12)",
    config=_BASE.with_(churn_rate=0.15, churn_downtime=12.0, dynamics_seed=7)))

register_scenario(ScenarioSpec(
    name="failure-storm",
    description="charger breakdowns + churn + requests, simultaneously",
    config=_BASE.with_(q=5, failure_rate=0.04, failure_mttr=8.0,
                       churn_rate=0.05, churn_downtime=10.0,
                       request_rate=0.3, dynamics_seed=7)))

register_scenario(ScenarioSpec(
    name="request-burst",
    description="heavy Poisson on-demand charging requests (rate 1.5)",
    config=_BASE.with_(horizon=100.0, request_rate=1.5, dynamics_seed=7)))


# Scoreboard policies: the paper's planner, its Section-VI adaptive
# variant, and the greedy comparator. Policy PRs extend this list via
# register_policy and land on every scorecard automatically.
register_policy("mtd")
register_policy("mtd-var", requires_variable=True)
register_policy("greedy")


register_suite(SuiteSpec(
    name="quick",
    description="every scenario at gate size (2 topologies) — CI and "
                "pre-commit regression checks",
))

register_suite(SuiteSpec(
    name="full",
    description="the same scenarios at 5 topologies and double horizon",
    overrides={"n_topologies": 5, "horizon": 240.0},
))
