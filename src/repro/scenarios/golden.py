"""Golden-scorecard comparison: the regression gate behind ``repro score``.

A *golden* scorecard is a checked-in :class:`~repro.scenarios.score.Scorecard`
(``golden/SCORECARD.<suite>.json``) recording the blessed value of every
gated metric. :func:`compare_scorecards` diffs a fresh run against it with
per-metric direction and tolerance from the :data:`METRICS` table and
returns the list of :class:`Regression` drifts; the CLI exits non-zero if
any survive.

Gating policy, per metric:

* **gated** metrics are deterministic (pure functions of scenario seeds
  and code) — any drift past tolerance is a real behaviour change, and
  drift in the *worse* direction fails the gate. Improvements are
  reported (so the golden can be re-blessed) but never fail.
* **informational** metrics (wall-clock replan latencies, raw dispatch
  and energy totals) appear on the scorecard for humans and dashboards
  but are never compared.

Tolerances are deliberately tight: gated metrics replay identical event
histories, so the only legitimate source of drift is a code change —
which is exactly what should re-bless the golden via
``repro score --update-golden``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.scenarios.score import Scorecard

__all__ = ["MetricSpec", "METRICS", "GATED_KEYS", "Regression",
           "compare_scorecards", "default_baseline_path"]


@dataclass(frozen=True)
class MetricSpec:
    """Definition of one scoring dimension.

    ``direction`` is ``"lower"`` or ``"higher"`` (which way is better);
    drift past ``max(abs_tol, rel_tol * |baseline|)`` in the worse
    direction is a regression. Non-gated specs are display-only.
    """

    key: str
    label: str
    direction: str
    gated: bool = False
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    fmt: str = "{:.3f}"

    def budget(self, baseline: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(baseline))

    def worse_by(self, current: float, baseline: float) -> float:
        """Signed drift in the *worse* direction (positive = worse)."""
        delta = current - baseline
        return delta if self.direction == "lower" else -delta


#: The fixed scoring dimensions, in scorecard column order. Keys mirror
#: :data:`repro.scenarios.score.METRIC_KEYS` one-to-one (checked by a
#: unit test).
METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("service_cost", "cost", "lower", gated=True,
               rel_tol=0.02, abs_tol=1e-6, fmt="{:.1f}"),
    MetricSpec("deaths", "deaths", "lower", gated=True,
               abs_tol=0.0, fmt="{:.0f}"),
    MetricSpec("dispatches", "disp", "lower", fmt="{:.1f}"),
    MetricSpec("charger_utilization", "util", "higher", gated=True,
               abs_tol=0.02, fmt="{:.3f}"),
    MetricSpec("energy_delivered", "energy", "higher", fmt="{:.2f}"),
    MetricSpec("replan_count", "replans", "lower", gated=True,
               abs_tol=0.5, fmt="{:.1f}"),
    MetricSpec("replan_latency_p50_ms", "p50 ms", "lower", fmt="{:.2f}"),
    MetricSpec("replan_latency_p99_ms", "p99 ms", "lower", fmt="{:.2f}"),
    MetricSpec("cache_hit_rate", "cache", "higher", gated=True,
               abs_tol=0.02, fmt="{:.3f}"),
)

#: Keys of the regression-gated (deterministic) metrics.
GATED_KEYS: tuple[str, ...] = tuple(m.key for m in METRICS if m.gated)

_BY_KEY = {m.key: m for m in METRICS}


@dataclass(frozen=True)
class Regression:
    """One gated metric drifting past tolerance (or lost coverage)."""

    scenario: str
    policy: str
    metric: str
    baseline: float | None
    current: float | None
    #: Positive drift in the worse direction, ``None`` for coverage loss.
    drift: float | None

    def describe(self) -> str:
        if self.drift is None:
            return (f"{self.scenario}/{self.policy}/{self.metric}: "
                    f"baseline has {self.baseline}, current has "
                    f"{self.current} (coverage lost)")
        spec = _BY_KEY[self.metric]
        arrow = "rose" if self.current > self.baseline else "fell"  # type: ignore[operator]
        return (f"{self.scenario}/{self.policy}/{self.metric}: "
                f"{spec.fmt.format(self.baseline)} -> "
                f"{spec.fmt.format(self.current)} "
                f"({arrow} {abs(self.drift):.4g} past tolerance "
                f"{spec.budget(self.baseline):.4g}, "
                f"{spec.direction} is better)")


def compare_scorecards(current: Scorecard, baseline: Scorecard
                       ) -> tuple[list[Regression], list[str]]:
    """Diff ``current`` against the golden ``baseline``.

    Returns ``(regressions, improvements)``: gate-failing drifts, and
    human-readable notes for better-than-golden cells (a hint to
    re-bless). Comparison walks the **baseline's** coverage — every
    scored ``(scenario, policy, gated metric)`` cell in the golden must
    still be scored, and be no worse; cells only present in ``current``
    (a new scenario or policy) are additions, not regressions.
    """
    regressions: list[Regression] = []
    improvements: list[str] = []
    for scenario, by_policy in baseline.scenarios.items():
        for policy, base_metrics in by_policy.items():
            if base_metrics is None:
                continue
            cur_metrics = current.metrics(scenario, policy)
            if cur_metrics is None:
                regressions.append(Regression(
                    scenario=scenario, policy=policy, metric="*",
                    baseline=None, current=None, drift=None))
                continue
            for spec in METRICS:
                if not spec.gated:
                    continue
                base = base_metrics.get(spec.key)
                if base is None:
                    continue  # dimension undefined at blessing time
                cur = cur_metrics.get(spec.key)
                if cur is None:
                    regressions.append(Regression(
                        scenario=scenario, policy=policy, metric=spec.key,
                        baseline=float(base), current=None, drift=None))
                    continue
                worse = spec.worse_by(float(cur), float(base))
                budget = spec.budget(float(base))
                if worse > budget:
                    regressions.append(Regression(
                        scenario=scenario, policy=policy, metric=spec.key,
                        baseline=float(base), current=float(cur), drift=worse))
                elif worse < -budget:
                    improvements.append(
                        f"{scenario}/{policy}/{spec.key}: "
                        f"{spec.fmt.format(float(base))} -> "
                        f"{spec.fmt.format(float(cur))} (improved)")
    return regressions, improvements


def default_baseline_path(suite: str, root: str | Path = ".") -> Path:
    """Checked-in golden location for a suite: ``golden/SCORECARD.<suite>.json``."""
    return Path(root) / "golden" / f"SCORECARD.{suite}.json"
