"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
``pip install -e .`` works in offline environments whose setuptools cannot
run PEP 660 editable builds (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Towards Perpetual Sensor Networks via Deploying "
        "Multiple Mobile Wireless Chargers' (ICPP 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
